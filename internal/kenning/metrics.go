package kenning

import (
	"fmt"
	"sort"
	"strings"
)

// ConfusionMatrix accumulates classification outcomes; rows are truth,
// columns are predictions — the report Kenning generates for
// classification models.
type ConfusionMatrix struct {
	n     int
	cells []int64
	total int64
}

// NewConfusionMatrix creates an n-class matrix.
func NewConfusionMatrix(n int) *ConfusionMatrix {
	return &ConfusionMatrix{n: n, cells: make([]int64, n*n)}
}

// Add records one (truth, prediction) pair.
func (m *ConfusionMatrix) Add(truth, pred int) error {
	if truth < 0 || truth >= m.n || pred < 0 || pred >= m.n {
		return fmt.Errorf("kenning: label (%d, %d) outside %d classes", truth, pred, m.n)
	}
	m.cells[truth*m.n+pred]++
	m.total++
	return nil
}

// At returns the count for (truth, pred).
func (m *ConfusionMatrix) At(truth, pred int) int64 { return m.cells[truth*m.n+pred] }

// Total returns the number of recorded samples.
func (m *ConfusionMatrix) Total() int64 { return m.total }

// Accuracy returns the trace fraction.
func (m *ConfusionMatrix) Accuracy() float64 {
	if m.total == 0 {
		return 0
	}
	var correct int64
	for i := 0; i < m.n; i++ {
		correct += m.At(i, i)
	}
	return float64(correct) / float64(m.total)
}

// Precision returns TP / (TP+FP) for a class (1 when the class is never
// predicted).
func (m *ConfusionMatrix) Precision(class int) float64 {
	var predicted int64
	for t := 0; t < m.n; t++ {
		predicted += m.At(t, class)
	}
	if predicted == 0 {
		return 1
	}
	return float64(m.At(class, class)) / float64(predicted)
}

// Recall returns TP / (TP+FN) for a class (1 when the class never
// occurs).
func (m *ConfusionMatrix) Recall(class int) float64 {
	var actual int64
	for p := 0; p < m.n; p++ {
		actual += m.At(class, p)
	}
	if actual == 0 {
		return 1
	}
	return float64(m.At(class, class)) / float64(actual)
}

// FalseNegativeRate returns FN / (TP+FN) for a class — the metric the
// arc-detection use case bounds ("ultra-low false-negative error rate").
func (m *ConfusionMatrix) FalseNegativeRate(class int) float64 {
	return 1 - m.Recall(class)
}

// String renders the matrix with per-class precision/recall.
func (m *ConfusionMatrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "T\\P")
	for p := 0; p < m.n; p++ {
		fmt.Fprintf(&b, "%8d", p)
	}
	fmt.Fprintf(&b, "%10s\n", "recall")
	for t := 0; t < m.n; t++ {
		fmt.Fprintf(&b, "%8d", t)
		for p := 0; p < m.n; p++ {
			fmt.Fprintf(&b, "%8d", m.At(t, p))
		}
		fmt.Fprintf(&b, "%10.3f\n", m.Recall(t))
	}
	fmt.Fprintf(&b, "%8s", "prec")
	for p := 0; p < m.n; p++ {
		fmt.Fprintf(&b, "%8.3f", m.Precision(p))
	}
	fmt.Fprintf(&b, "\naccuracy %.3f over %d samples\n", m.Accuracy(), m.total)
	return b.String()
}

// PRPoint is one operating point of a detector.
type PRPoint struct {
	Threshold         float64
	Precision, Recall float64
}

// PRCurve computes the precision/recall curve for a binary detector
// from per-sample scores and ground truth — the report Kenning
// generates for detection algorithms. Points are ordered by descending
// threshold.
func PRCurve(scores []float64, truth []bool) ([]PRPoint, error) {
	if len(scores) != len(truth) {
		return nil, fmt.Errorf("kenning: %d scores for %d labels", len(scores), len(truth))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("kenning: empty detector output")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })

	var totalPos int
	for _, t := range truth {
		if t {
			totalPos++
		}
	}
	var curve []PRPoint
	tp, fp := 0, 0
	for _, i := range idx {
		if truth[i] {
			tp++
		} else {
			fp++
		}
		prec := float64(tp) / float64(tp+fp)
		rec := 1.0
		if totalPos > 0 {
			rec = float64(tp) / float64(totalPos)
		}
		curve = append(curve, PRPoint{Threshold: scores[i], Precision: prec, Recall: rec})
	}
	return curve, nil
}

// AveragePrecision integrates the PR curve (step interpolation).
func AveragePrecision(curve []PRPoint) float64 {
	var ap, prevRecall float64
	for _, p := range curve {
		ap += p.Precision * (p.Recall - prevRecall)
		prevRecall = p.Recall
	}
	return ap
}
