// Package kenning is the deployment-and-benchmarking framework of the
// toolchain — the reproduction of Antmicro's Kenning (§III, [10]): it
// chains the deployment steps (load → optimize → compile → deploy →
// measure) over interchangeable runtime targets, measures inference
// duration and resource usage, and "can automatically benchmark the
// processing quality of a given neural network and generate a confusion
// matrix for classification models and recall/precision graphs for
// detection algorithms".
package kenning

import (
	"fmt"
	"sort"
	"time"

	"vedliot/internal/accel"
	"vedliot/internal/dataset"
	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// Target is a runtime a model can be deployed to.
type Target interface {
	// Name identifies the target in reports.
	Name() string
	// Deploy installs a compiled model.
	Deploy(g *nn.Graph) error
	// Infer runs one input and returns the output plus the inference
	// latency attributed to the target (wall time for real targets,
	// modeled time for simulated accelerators).
	Infer(in *tensor.Tensor) (*tensor.Tensor, time.Duration, error)
}

// CPUTarget executes on the host through the compiled execution-plan
// engine — Kenning's "native runtime" role. Deploy is the compile step;
// Infer measures real wall time per inference. With a calibration
// Schema attached, Deploy compiles the native INT8 plan instead
// (falling back to FP32 when the graph cannot be lowered), so the
// measured latencies reflect genuinely quantized execution.
type CPUTarget struct {
	// Options configure engine compilation (worker pool size etc.).
	Options []inference.Option
	// Schema enables the native quantized runtime.
	Schema *nn.QuantSchema

	exe singleRunner
}

// singleRunner is the RunSingle surface shared by the FP32 and
// quantized engines.
type singleRunner interface {
	RunSingle(*tensor.Tensor) (*tensor.Tensor, error)
}

// Name implements Target. Before Deploy it names the intent; after
// Deploy it names the runtime actually compiled, so a quantized deploy
// that fell back to FP32 (schema not covering the graph) is not
// mislabeled in measurement reports.
func (c *CPUTarget) Name() string {
	if _, quantized := c.exe.(*inference.QuantEngine); quantized || (c.exe == nil && c.Schema != nil) {
		return "cpu-int8"
	}
	return "cpu-reference"
}

// Deploy implements Target.
func (c *CPUTarget) Deploy(g *nn.Graph) error {
	if c.Schema != nil {
		exe, err := inference.QuantizedBackend{Schema: c.Schema}.Compile(g, c.Options...)
		if err != nil {
			return err
		}
		c.exe = exe.(singleRunner)
		return nil
	}
	eng, err := inference.Compile(g, c.Options...)
	if err != nil {
		return err
	}
	c.exe = eng
	return nil
}

// Infer implements Target.
func (c *CPUTarget) Infer(in *tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	if c.exe == nil {
		return nil, 0, fmt.Errorf("kenning: target not deployed")
	}
	start := time.Now()
	out, err := c.exe.RunSingle(in)
	return out, time.Since(start), err
}

// SimTarget deploys through a Device-backed accel.Backend: execution is
// functionally accurate on the host (bit-exact FP32, or the native
// quantized engine for INT8 deployments with a Schema) while the
// reported latency comes from the accelerator's roofline model — the
// "deploy to target hardware and measure" role when the hardware is
// simulated.
type SimTarget struct {
	Device    *accel.Device
	Precision tensor.DType
	// Schema enables native INT8 functional execution on INT8
	// deployments.
	Schema *nn.QuantSchema

	program *accel.Program
	latency time.Duration
}

// Name implements Target.
func (s *SimTarget) Name() string { return "sim:" + s.Device.Name }

// Deploy implements Target.
func (s *SimTarget) Deploy(g *nn.Graph) error {
	backend := &accel.Backend{Device: s.Device, Precision: s.Precision, Schema: s.Schema}
	exe, err := backend.Compile(g)
	if err != nil {
		return err
	}
	prog := exe.(*accel.Program)
	lat, err := prog.PredictLatency(1)
	if err != nil {
		return err
	}
	s.program = prog
	s.latency = lat
	return nil
}

// Infer implements Target.
func (s *SimTarget) Infer(in *tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	if s.program == nil {
		return nil, 0, fmt.Errorf("kenning: target not deployed")
	}
	out, err := s.program.RunSingle(in)
	return out, s.latency, err
}

// PipelineConfig selects optimization steps (§III deployment steps 4-6).
type PipelineConfig struct {
	// Passes are the graph-surgery passes; nil = StandardPasses.
	Passes []optimize.Pass
	// Quantize enables post-training INT8 weight quantization.
	Quantize    bool
	Granularity optimize.QuantGranularity
	// CalibrationSamples are inputs run through the optimized graph to
	// derive the activation QuantSchema (rep.Schema) — the artifact the
	// native INT8 runtime consumes. Empty skips calibration.
	CalibrationSamples []map[string]*tensor.Tensor
	// Prune applies magnitude pruning to this sparsity when > 0.
	Prune float64
}

// PipelineReport records what the pipeline did.
type PipelineReport struct {
	AppliedPasses []string
	QuantReport   *optimize.QuantReport
	PruneReport   *optimize.PruneReport
	// Schema is the calibrated activation schema (nil without
	// calibration samples).
	Schema      *nn.QuantSchema
	WeightBytes int64
}

// RunPipeline optimizes g in place for deployment.
func RunPipeline(g *nn.Graph, cfg PipelineConfig) (PipelineReport, error) {
	var rep PipelineReport
	passes := cfg.Passes
	if passes == nil {
		passes = optimize.StandardPasses()
	}
	applied, err := optimize.Pipeline(g, passes, 0)
	if err != nil {
		return rep, err
	}
	rep.AppliedPasses = applied
	if err := g.InferShapes(1); err != nil {
		return rep, err
	}
	if cfg.Prune > 0 {
		pr, err := optimize.MagnitudePrune(g, cfg.Prune)
		if err != nil {
			return rep, err
		}
		rep.PruneReport = &pr
	}
	if cfg.Quantize {
		qr, err := optimize.QuantizeWeights(g, optimize.QuantConfig{
			Granularity:        cfg.Granularity,
			CalibrationSamples: cfg.CalibrationSamples,
		})
		if err != nil {
			return rep, err
		}
		rep.QuantReport = &qr
		rep.Schema = qr.Schema
	} else if len(cfg.CalibrationSamples) > 0 {
		schema, err := optimize.Calibrate(g, cfg.CalibrationSamples)
		if err != nil {
			return rep, err
		}
		rep.Schema = schema
	}
	rep.WeightBytes = g.WeightBytes()
	return rep, nil
}

// LatencyStats summarizes per-inference latency.
type LatencyStats struct {
	Count          int
	Mean, P50, P95 time.Duration
	Min, Max       time.Duration
}

func latencyStats(ds []time.Duration) LatencyStats {
	if len(ds) == 0 {
		return LatencyStats{}
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	pick := func(q float64) time.Duration {
		idx := int(q * float64(len(sorted)-1))
		return sorted[idx]
	}
	return LatencyStats{
		Count: len(sorted),
		Mean:  sum / time.Duration(len(sorted)),
		P50:   pick(0.5),
		P95:   pick(0.95),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
}

// Evaluation is the measurement report for one target and dataset.
type Evaluation struct {
	Target    string
	Latency   LatencyStats
	Confusion *ConfusionMatrix
}

// Evaluate deploys the model to the target and runs the labelled
// samples, producing latency statistics and a confusion matrix.
// Sample feature vectors are reshaped to the model input.
func Evaluate(g *nn.Graph, target Target, samples []dataset.Sample, numClasses int) (Evaluation, error) {
	ev := Evaluation{Target: target.Name()}
	if err := target.Deploy(g); err != nil {
		return ev, err
	}
	if err := g.InferShapes(1); err != nil {
		return ev, err
	}
	inShape := g.Node(g.Inputs[0]).OutShape
	cm := NewConfusionMatrix(numClasses)
	var lats []time.Duration
	for _, s := range samples {
		in := tensor.New(tensor.FP32, inShape...)
		if len(s.X) != in.NumElements() {
			return ev, fmt.Errorf("kenning: sample dim %d != input %d", len(s.X), in.NumElements())
		}
		copy(in.F32, s.X)
		out, lat, err := target.Infer(in)
		if err != nil {
			return ev, err
		}
		lats = append(lats, lat)
		if err := cm.Add(s.Label, tensor.ArgMax(out)); err != nil {
			return ev, err
		}
	}
	ev.Latency = latencyStats(lats)
	ev.Confusion = cm
	return ev, nil
}
