package kenning

import (
	"crypto/ed25519"
	"os"
	"path/filepath"
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/release"
	"vedliot/internal/tensor"
)

func TestExportTargetRoundTrip(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	path := filepath.Join(t.TempDir(), "gesture.vedz")
	target := &ExportTarget{Path: path}
	if _, _, err := target.Infer(tensor.New(tensor.FP32, 1, 1, 16, 16)); err == nil {
		t.Fatal("Infer before Deploy succeeded")
	}
	if err := target.Deploy(g); err != nil {
		t.Fatal(err)
	}
	m := target.Model()
	if m == nil || m.Digest == "" {
		t.Fatal("export target did not surface the reloaded artifact")
	}
	if m.Prov.Tool != "kenning" {
		t.Fatalf("provenance tool %q, want kenning default", m.Prov.Tool)
	}

	// Inference through the reloaded artifact is bitwise the in-process
	// engine's result.
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range in.F32 {
		in.F32[i] = float32(i%11)/11 - 0.5
	}
	want, err := eng.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	got, lat, err := target.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("no latency measured")
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("artifact-served output differs by %g", d)
	}
}

func TestExportTargetQuantized(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	samples, err := nn.SyntheticCalibration(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "gesture-int8.vedz")
	target := &ExportTarget{Path: path, Schema: schema}
	if err := target.Deploy(g); err != nil {
		t.Fatal(err)
	}
	if target.Model().Schema == nil {
		t.Fatal("exported artifact lost its schema")
	}
	// The serving engine is the native quantized plan: bitwise parity
	// with CompileQuantized of the source graph.
	q, err := inference.CompileQuantized(g, schema)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range in.F32 {
		in.F32[i] = float32(i%7)/7 - 0.5
	}
	want, err := q.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := target.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("quantized artifact output differs by %g", d)
	}
}

func TestExportTargetName(t *testing.T) {
	target := &ExportTarget{Path: "/some/dir/model.vedz"}
	if target.Name() != "vedz:model.vedz" {
		t.Fatalf("Name = %q", target.Name())
	}
	if err := (&ExportTarget{}).Deploy(nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 1})); err == nil {
		t.Fatal("Deploy without path succeeded")
	}
}

func TestExportTargetPublishesRelease(t *testing.T) {
	s, err := release.NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	_, logKey, err := release.GenerateLogKey()
	if err != nil {
		t.Fatal(err)
	}
	log := release.NewLog("test/kenning", logKey)
	w, err := release.GenerateWitness("w0", log.Public())
	if err != nil {
		t.Fatal(err)
	}
	pub := &release.Publisher{Signer: s, Log: log, Witnesses: []*release.Witness{w}, Tool: "kenning"}

	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	path := filepath.Join(t.TempDir(), "gesture.vedz")
	target := &ExportTarget{Path: path, Publisher: pub}
	if target.Bundle() != nil {
		t.Fatal("bundle exists before Deploy")
	}
	if err := target.Deploy(g); err != nil {
		t.Fatal(err)
	}
	b := target.Bundle()
	if b == nil {
		t.Fatal("publisher-equipped deploy produced no bundle")
	}
	if log.Size() != 1 {
		t.Fatalf("log has %d entries after one export", log.Size())
	}
	// The bundle verifies the on-disk artifact bytes under a policy
	// trusting exactly this channel.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	policy := &release.Policy{
		Signers:      []ed25519.PublicKey{s.Public()},
		LogPub:       log.Public(),
		Witnesses:    []ed25519.PublicKey{w.Public()},
		MinWitnesses: 1,
	}
	if err := policy.VerifyArtifact(data, b); err != nil {
		t.Fatal(err)
	}
	if b.Envelope.ArtifactDigest != target.Model().Digest {
		t.Fatalf("envelope digest %s, model digest %s", b.Envelope.ArtifactDigest, target.Model().Digest)
	}
}
