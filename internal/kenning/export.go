package kenning

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vedliot/internal/artifact"
	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/release"
	"vedliot/internal/tensor"
)

// ExportTarget is the deployment pipeline's packaging step: Deploy
// writes the optimized model to a .vedz deployment artifact, reloads
// it (verifying the round trip end to end) and serves inference from
// the reloaded copy — so the latency and outputs it reports are those
// of the artifact a fleet would actually load, not of the in-process
// graph. With a calibration Schema the artifact embeds the activation
// ranges and Infer runs on the native INT8 engine.
type ExportTarget struct {
	// Path is the .vedz destination file.
	Path string
	// Schema is the calibrated activation schema to embed (nil for
	// FP32-only artifacts).
	Schema *nn.QuantSchema
	// Prov seeds the artifact provenance; the model name is always
	// overwritten from the graph and Tool defaults to "kenning".
	Prov artifact.Provenance
	// Options configure compilation of the serving engine.
	Options []inference.Option
	// Publisher, when set, turns the export into a signed release: after
	// the reload round trip verifies, the artifact bytes are signed,
	// appended to the transparency log and countersigned by the
	// publisher's witnesses. The resulting bundle (Bundle) is what a
	// policy-gated registry demands at deploy time.
	Publisher *release.Publisher

	model  *artifact.Model
	bundle *release.Bundle
	exe    singleRunner
}

// Name implements Target.
func (t *ExportTarget) Name() string { return "vedz:" + filepath.Base(t.Path) }

// Deploy implements Target: save, reload, compile the reloaded model.
func (t *ExportTarget) Deploy(g *nn.Graph) error {
	if t.Path == "" {
		return fmt.Errorf("kenning: export target has no path")
	}
	prov := t.Prov
	if prov.Tool == "" {
		prov.Tool = "kenning"
	}
	m := &artifact.Model{Graph: g, Schema: t.Schema, Prov: prov}
	if err := artifact.Save(t.Path, m); err != nil {
		return err
	}
	loaded, err := artifact.Load(t.Path)
	if err != nil {
		return fmt.Errorf("kenning: reload exported artifact: %w", err)
	}
	if loaded.Digest != m.Digest {
		return fmt.Errorf("kenning: exported artifact digest drifted (%s -> %s)", m.Digest, loaded.Digest)
	}
	var backend inference.Backend = inference.CPUBackend{}
	if loaded.Schema != nil {
		backend = inference.QuantizedBackend{Schema: loaded.Schema}
	}
	exe, err := backend.Compile(loaded.Graph, t.Options...)
	if err != nil {
		return err
	}
	sr, ok := exe.(singleRunner)
	if !ok {
		return fmt.Errorf("kenning: backend %s produced an executable without RunSingle", backend.Name())
	}
	if t.Publisher != nil {
		// Publish the exact bytes a fleet will load — the file just
		// written and re-verified, not the in-memory encoding.
		data, err := os.ReadFile(t.Path)
		if err != nil {
			return fmt.Errorf("kenning: read exported artifact for release: %w", err)
		}
		b, err := t.Publisher.Publish(data, g.Name)
		if err != nil {
			return fmt.Errorf("kenning: publish release: %w", err)
		}
		t.bundle = b
	}
	t.exe = sr
	t.model = loaded
	return nil
}

// Infer implements Target: one inference through the reloaded
// artifact, measured in wall time.
func (t *ExportTarget) Infer(in *tensor.Tensor) (*tensor.Tensor, time.Duration, error) {
	if t.exe == nil {
		return nil, 0, fmt.Errorf("kenning: target not deployed")
	}
	start := time.Now()
	out, err := t.exe.RunSingle(in)
	return out, time.Since(start), err
}

// Model returns the reloaded artifact (digest set), nil before Deploy.
func (t *ExportTarget) Model() *artifact.Model { return t.model }

// Bundle returns the release bundle produced by a Publisher-equipped
// Deploy, nil before Deploy or without a Publisher.
func (t *ExportTarget) Bundle() *release.Bundle { return t.bundle }

var _ Target = (*ExportTarget)(nil)
