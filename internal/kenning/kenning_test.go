package kenning

import (
	"math"
	"testing"

	"vedliot/internal/accel"
	"vedliot/internal/dataset"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
	"vedliot/internal/train"
)

func trainedClassifier(t *testing.T) (*nn.Graph, []dataset.Sample) {
	t.Helper()
	samples := dataset.Blobs(400, 12, 3, 0.25, 17)
	trainSet, testSet := dataset.Split(samples, 0.25)
	g := nn.MLP("clf", []int{12, 24, 3}, nn.BuildOptions{Weights: true, Seed: 18})
	if _, err := train.SGD(g, trainSet, train.Config{Epochs: 15, LR: 0.1, BatchSize: 16, Seed: 19}); err != nil {
		t.Fatal(err)
	}
	return g, testSet
}

func TestEvaluateOnCPUTarget(t *testing.T) {
	g, testSet := trainedClassifier(t)
	ev, err := Evaluate(g, &CPUTarget{}, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Confusion.Accuracy() < 0.85 {
		t.Errorf("accuracy = %.2f", ev.Confusion.Accuracy())
	}
	if ev.Latency.Count != len(testSet) || ev.Latency.Mean <= 0 {
		t.Errorf("latency stats = %+v", ev.Latency)
	}
	if ev.Latency.P95 < ev.Latency.P50 {
		t.Error("p95 < p50")
	}
}

func TestEvaluateOnSimTarget(t *testing.T) {
	g, testSet := trainedClassifier(t)
	dev, err := accel.FindDevice("Xavier NX")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(g, &SimTarget{Device: dev, Precision: tensor.FP16}, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Quality identical to CPU (same arithmetic), latency from model.
	cpu, err := Evaluate(g, &CPUTarget{}, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Confusion.Accuracy() != cpu.Confusion.Accuracy() {
		t.Error("sim target changed accuracy")
	}
	if ev.Latency.Min != ev.Latency.Max {
		t.Error("modeled latency should be constant per model")
	}
}

func TestRunPipelineQuantizeAndPrune(t *testing.T) {
	g, testSet := trainedClassifier(t)
	before, err := Evaluate(g.Clone(), &CPUTarget{}, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunPipeline(g, PipelineConfig{Quantize: true, Prune: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PruneReport == nil || rep.QuantReport == nil {
		t.Fatal("missing stage reports")
	}
	if math.Abs(rep.PruneReport.Sparsity()-0.5) > 0.05 {
		t.Errorf("sparsity = %.2f", rep.PruneReport.Sparsity())
	}
	after, err := Evaluate(g, &CPUTarget{}, testSet, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The compressed model keeps most of its accuracy.
	if after.Confusion.Accuracy() < before.Confusion.Accuracy()-0.15 {
		t.Errorf("compression destroyed accuracy: %.2f -> %.2f",
			before.Confusion.Accuracy(), after.Confusion.Accuracy())
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(2)
	// 3 TP(1), 1 FN(1->0), 1 FP(0->1), 5 TN.
	for i := 0; i < 3; i++ {
		_ = cm.Add(1, 1)
	}
	_ = cm.Add(1, 0)
	_ = cm.Add(0, 1)
	for i := 0; i < 5; i++ {
		_ = cm.Add(0, 0)
	}
	if cm.Total() != 10 {
		t.Errorf("total = %d", cm.Total())
	}
	if acc := cm.Accuracy(); math.Abs(acc-0.8) > 1e-9 {
		t.Errorf("accuracy = %v", acc)
	}
	if p := cm.Precision(1); math.Abs(p-0.75) > 1e-9 {
		t.Errorf("precision(1) = %v", p)
	}
	if r := cm.Recall(1); math.Abs(r-0.75) > 1e-9 {
		t.Errorf("recall(1) = %v", r)
	}
	if fnr := cm.FalseNegativeRate(1); math.Abs(fnr-0.25) > 1e-9 {
		t.Errorf("FNR(1) = %v", fnr)
	}
	if err := cm.Add(5, 0); err == nil {
		t.Error("out-of-range label accepted")
	}
	if s := cm.String(); len(s) == 0 {
		t.Error("empty render")
	}
	// Degenerate classes.
	empty := NewConfusionMatrix(2)
	if empty.Precision(0) != 1 || empty.Recall(0) != 1 {
		t.Error("degenerate precision/recall should be 1")
	}
}

func TestPRCurve(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	truth := []bool{true, true, false, true, false}
	curve, err := PRCurve(scores, truth)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 5 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// First point: highest threshold, one TP.
	if curve[0].Precision != 1 || math.Abs(curve[0].Recall-1.0/3) > 1e-9 {
		t.Errorf("point0 = %+v", curve[0])
	}
	// Recall is non-decreasing.
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Error("recall decreased")
		}
	}
	// Last point recalls everything.
	if curve[len(curve)-1].Recall != 1 {
		t.Error("final recall != 1")
	}
	ap := AveragePrecision(curve)
	if ap <= 0.5 || ap > 1 {
		t.Errorf("AP = %v", ap)
	}
	if _, err := PRCurve([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := PRCurve(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
}

func TestTargetsRequireDeploy(t *testing.T) {
	in := tensor.New(tensor.FP32, 1, 4)
	if _, _, err := (&CPUTarget{}).Infer(in); err == nil {
		t.Error("undeployed CPU target ran")
	}
	dev, _ := accel.FindDevice("Xavier NX")
	if _, _, err := (&SimTarget{Device: dev, Precision: tensor.FP16}).Infer(in); err == nil {
		t.Error("undeployed sim target ran")
	}
}
