// Package artifact implements the .vedz deployment artifact: the
// on-disk unit the toolchain ships to a fleet.
//
// The paper's toolchain story (§III) is train/optimize once, deploy
// everywhere: a model leaves the optimization pipeline as a reusable
// package that every node of a heterogeneous fleet loads, instead of
// re-running quantization, calibration and lowering at process start.
// A .vedz file is that package for this reproduction: one
// self-describing binary holding the nn.Graph structure, the weight
// payloads, the calibrated nn.QuantSchema and the optimizer provenance
// of one model.
//
// The format is versioned, deterministic and CRC-checked: the same
// Model always encodes to the same bytes (weight keys sorted, schema
// JSON canonical, no timestamps), so the SHA-256 content digest is
// stable across runs and machines and can key the fleet-wide
// compiled-plan cache (inference.PlanCache). The weights section stores
// raw little-endian payloads at 64-byte-aligned offsets, so Load can
// hand tensor buffers zero-copy views into the file image on
// little-endian hosts — a replica cold-start reads the file once and
// binds, it never re-serializes weights.
//
// Entry points: Save/Load round-trip a Model through a file,
// Encode/Decode through bytes, Inspect summarizes a file without
// trusting it, and Verify re-checks every integrity property
// (per-section CRCs, digest, canonical re-encoding, graph validity,
// schema coverage). cmd/vedliot-pack exposes all of them on the
// command line.
package artifact

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sort"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Format constants of the .vedz container.
const (
	// Magic is the 4-byte file signature.
	Magic = "VEDZ"
	// Version is the format version this package reads and writes.
	Version = 1
	// WeightAlign is the alignment (in bytes) of the weights section
	// payload and of every weight payload within it, chosen so FP32/FP16
	// views and cache lines never straddle a weight boundary.
	WeightAlign = 64
)

// Section tags, in the order sections appear in the file. The schema
// section is present only when the model carries a calibration schema.
const (
	// TagMeta is the provenance section (canonical JSON).
	TagMeta = "META"
	// TagGraph is the graph-structure section (binary, weight payloads
	// referenced by offset into the weights section).
	TagGraph = "GRPH"
	// TagSchema is the optional quantization-schema section
	// (nn.QuantSchema canonical JSON).
	TagSchema = "SCHM"
	// TagWeights is the aligned raw weight payload section.
	TagWeights = "WGTS"
)

// Provenance records where a model came from: the tool and optimizer
// passes that produced it. It is deliberately free of timestamps and
// host identity so that re-packing the same model yields the same
// bytes and therefore the same digest.
type Provenance struct {
	// Model names the packaged graph (mirrors Graph.Name).
	Model string `json:"model"`
	// Tool names the producer (e.g. "vedliot-pack", "kenning").
	Tool string `json:"tool,omitempty"`
	// Passes lists the optimization passes applied, in order.
	Passes []string `json:"passes,omitempty"`
	// Quantized names the weight-quantization granularity applied
	// ("per-channel", "per-tensor"), empty for FP32 weights.
	Quantized string `json:"quantized,omitempty"`
	// PrunedSparsity is the magnitude-pruning sparsity applied (0 = none).
	PrunedSparsity float64 `json:"pruned_sparsity,omitempty"`
	// Notes carries free-form producer notes.
	Notes string `json:"notes,omitempty"`
}

// Model is one deployable model: the graph with its weights, the
// optional activation calibration schema and the producer provenance.
type Model struct {
	// Graph is the operator graph including weight tensors.
	Graph *nn.Graph
	// Schema is the calibrated activation schema enabling native INT8
	// execution; nil for FP32-only artifacts.
	Schema *nn.QuantSchema
	// Prov is the producer provenance.
	Prov Provenance

	// Digest is the SHA-256 content digest ("sha256:<hex>") of the
	// encoded artifact; set by Save, Load, Encode and Decode. It is the
	// identity the plan cache and the cluster registry key on.
	Digest string
}

// DigestBytes computes the content digest of encoded artifact bytes.
func DigestBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("sha256:%x", sum)
}

// SchemaDigest computes the content digest of a calibration schema's
// canonical JSON, or "" for nil — the schema component of plan-cache
// keys built outside an artifact.
func SchemaDigest(s *nn.QuantSchema) string {
	if s == nil {
		return ""
	}
	data, err := s.Encode()
	if err != nil {
		return ""
	}
	return DigestBytes(data)
}

// Encode serializes the model to the deterministic .vedz byte form and
// returns it together with its content digest. The model's Digest
// field is updated.
func (m *Model) Encode() ([]byte, error) {
	if m.Graph == nil {
		return nil, fmt.Errorf("artifact: nil graph")
	}
	if err := m.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: refusing to encode invalid graph: %w", err)
	}
	prov := m.Prov
	prov.Model = m.Graph.Name

	meta, err := json.Marshal(prov)
	if err != nil {
		return nil, fmt.Errorf("artifact: encode provenance: %w", err)
	}
	graphSec, weightSec, err := encodeGraph(m.Graph)
	if err != nil {
		return nil, err
	}
	sections := []section{{tag: TagMeta, payload: meta}, {tag: TagGraph, payload: graphSec}}
	if m.Schema != nil {
		schema, err := m.Schema.Encode()
		if err != nil {
			return nil, fmt.Errorf("artifact: encode schema: %w", err)
		}
		sections = append(sections, section{tag: TagSchema, payload: schema})
	}
	sections = append(sections, section{tag: TagWeights, payload: weightSec})

	var out bytes.Buffer
	out.WriteString(Magic)
	w := &bw{buf: &out}
	w.u32(Version)
	w.u32(uint32(len(sections)))
	for _, s := range sections {
		out.WriteString(s.tag)
		w.u32(crc32.ChecksumIEEE(s.payload))
		w.u64(uint64(len(s.payload)))
		pad := 0
		if s.tag == TagWeights {
			// +4 for the pad field itself, written next.
			pad = padTo(out.Len()+4, WeightAlign)
		}
		w.u32(uint32(pad))
		out.Write(make([]byte, pad))
		out.Write(s.payload)
	}
	data := out.Bytes()
	m.Digest = DigestBytes(data)
	return data, nil
}

// Save writes the model to path as a .vedz file and records its
// content digest in m.Digest.
func Save(path string, m *Model) error {
	data, err := m.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("artifact: save %s: %w", path, err)
	}
	return nil
}

// Load reads a .vedz file, verifies its section CRCs and reconstructs
// the model. Weight tensors are zero-copy views into the file image
// where the host allows it (little-endian, aligned); treat them as
// read-only or Clone before mutating.
func Load(path string) (*Model, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("artifact: load %s: %w", path, err)
	}
	m, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("artifact: load %s: %w", path, err)
	}
	return m, nil
}

// Decode reconstructs a model from encoded artifact bytes, verifying
// the magic, version and every section CRC. See Load for the weight
// aliasing contract.
func Decode(data []byte) (*Model, error) {
	secs, err := parseSections(data)
	if err != nil {
		return nil, err
	}
	return decodeSections(secs, DigestBytes(data))
}

// decodeSections reconstructs a model from an already-parsed (and
// CRC-verified) section table.
func decodeSections(secs map[string]section, digest string) (*Model, error) {
	m := &Model{Digest: digest}
	meta, ok := secs[TagMeta]
	if !ok {
		return nil, fmt.Errorf("artifact: missing %s section", TagMeta)
	}
	if err := json.Unmarshal(meta.payload, &m.Prov); err != nil {
		return nil, fmt.Errorf("artifact: decode provenance: %w", err)
	}
	graphSec, ok := secs[TagGraph]
	if !ok {
		return nil, fmt.Errorf("artifact: missing %s section", TagGraph)
	}
	weightSec, ok := secs[TagWeights]
	if !ok {
		return nil, fmt.Errorf("artifact: missing %s section", TagWeights)
	}
	g, err := decodeGraph(graphSec.payload, weightSec.payload)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("artifact: decoded graph invalid: %w", err)
	}
	m.Graph = g
	if schemaSec, ok := secs[TagSchema]; ok {
		schema, err := nn.DecodeQuantSchema(schemaSec.payload)
		if err != nil {
			return nil, fmt.Errorf("artifact: decode schema: %w", err)
		}
		m.Schema = schema
	}
	return m, nil
}

// Verify re-checks every integrity property of encoded artifact bytes:
// section CRCs, graph validity, schema coverage of the graph (when a
// schema section is present) and canonical form — re-encoding the
// decoded model must reproduce the input bytes exactly, so a verified
// file is guaranteed byte-stable across load/save cycles.
func Verify(data []byte) (*Model, error) {
	m, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if m.Schema != nil {
		if err := m.Schema.Covers(m.Graph); err != nil {
			return nil, fmt.Errorf("artifact: schema does not cover graph: %w", err)
		}
	}
	reenc, err := m.Encode()
	if err != nil {
		return nil, fmt.Errorf("artifact: re-encode: %w", err)
	}
	if !bytes.Equal(reenc, data) {
		return nil, fmt.Errorf("artifact: not in canonical form (re-encode differs: %d vs %d bytes)", len(reenc), len(data))
	}
	return m, nil
}

// section is one tagged payload of the container, with its stored
// (and verified) CRC.
type section struct {
	tag     string
	payload []byte
	crc     uint32
}

// parseSections walks the container, checking magic, version and every
// section CRC, and returns the payload slices by tag (views into data,
// not copies).
func parseSections(data []byte) (map[string]section, error) {
	if len(data) < 12 {
		return nil, fmt.Errorf("artifact: truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != Magic {
		return nil, fmt.Errorf("artifact: bad magic %q", data[:4])
	}
	r := &br{data: data, off: 4}
	version := r.u32()
	count := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if version != Version {
		return nil, fmt.Errorf("artifact: unsupported format version %d (this build reads %d)", version, Version)
	}
	if count > 16 {
		return nil, fmt.Errorf("artifact: implausible section count %d", count)
	}
	secs := make(map[string]section, count)
	for i := uint32(0); i < count; i++ {
		tag := r.bytes(4)
		crc := r.u32()
		length := r.u64()
		pad := r.u32()
		if r.err != nil {
			return nil, fmt.Errorf("artifact: truncated section header: %w", r.err)
		}
		if pad > WeightAlign {
			return nil, fmt.Errorf("artifact: implausible section padding %d", pad)
		}
		r.bytes(int(pad))
		if length > uint64(len(data)) {
			return nil, fmt.Errorf("artifact: section %s length %d exceeds file size %d", tag, length, len(data))
		}
		payload := r.bytes(int(length))
		if r.err != nil {
			return nil, fmt.Errorf("artifact: truncated section %s: %w", tag, r.err)
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("artifact: section %s CRC mismatch (file %08x, computed %08x): corrupted", tag, crc, got)
		}
		if _, dup := secs[string(tag)]; dup {
			return nil, fmt.Errorf("artifact: duplicate section %s", tag)
		}
		secs[string(tag)] = section{tag: string(tag), payload: payload, crc: crc}
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("artifact: %d trailing bytes after last section", len(data)-r.off)
	}
	return secs, nil
}

// padTo returns the zero-byte count that advances off to the next
// multiple of align.
func padTo(off, align int) int {
	rem := off % align
	if rem == 0 {
		return 0
	}
	return align - rem
}

// sortedWeightKeys returns a node's weight keys in the canonical
// (sorted) encoding order.
func sortedWeightKeys(n *nn.Node) []string {
	keys := make([]string, 0, len(n.Weights))
	for k := range n.Weights {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// weightPayloadLen returns the raw payload size of a tensor in bytes.
func weightPayloadLen(t *tensor.Tensor) int { return t.SizeBytes() }
