package artifact

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// The graph section stores structure only; every weight tensor is a
// descriptor (dtype, shape, quantization parameters) plus an
// (offset, length) reference into the weights section, whose payloads
// sit at WeightAlign boundaries. Loading therefore never re-parses
// weight bytes: the descriptors are decoded and the payloads are
// wrapped — zero-copy where the host allows it (see view.go).

// encodeGraph serializes g's structure and packs its weight payloads
// into the aligned weights blob, returning both section payloads.
func encodeGraph(g *nn.Graph) (graphSec, weightSec []byte, err error) {
	var blob bytes.Buffer
	var buf bytes.Buffer
	w := &bw{buf: &buf}

	w.str(g.Name)
	w.u32(uint32(len(g.Nodes)))
	for _, n := range g.Nodes {
		w.str(n.Name)
		w.str(n.Op.String())
		w.u32(uint32(len(n.Inputs)))
		for _, in := range n.Inputs {
			w.str(in)
		}
		a := n.Attrs
		for _, v := range []int{
			a.KernelH, a.KernelW, a.StrideH, a.StrideW, a.PadH, a.PadW,
			a.Groups, a.OutC, a.Scale,
		} {
			w.i32(int32(v))
		}
		w.f32(a.Alpha)
		w.f32(a.Eps)
		if a.Bias {
			w.u32(1)
		} else {
			w.u32(0)
		}
		w.u32(uint32(len(a.Shape)))
		for _, d := range a.Shape {
			w.i32(int32(d))
		}
		keys := sortedWeightKeys(n)
		w.u32(uint32(len(keys)))
		for _, k := range keys {
			t := n.Weights[k]
			w.str(k)
			w.u32(uint32(t.DType))
			w.u32(uint32(len(t.Shape)))
			for _, d := range t.Shape {
				w.i32(int32(d))
			}
			w.f32(t.Quant.Scale)
			w.i32(t.Quant.Zero)
			blob.Write(make([]byte, padTo(blob.Len(), WeightAlign)))
			w.u64(uint64(blob.Len()))
			w.u64(uint64(weightPayloadLen(t)))
			writeWeightPayload(&blob, t)
		}
	}
	w.u32(uint32(len(g.Outputs)))
	for _, o := range g.Outputs {
		w.str(o)
	}
	if w.err != nil {
		return nil, nil, fmt.Errorf("artifact: encode graph: %w", w.err)
	}
	return buf.Bytes(), blob.Bytes(), nil
}

// writeWeightPayload appends a tensor's raw little-endian payload.
func writeWeightPayload(blob *bytes.Buffer, t *tensor.Tensor) {
	switch t.DType {
	case tensor.FP32:
		var b [4]byte
		for _, v := range t.F32 {
			binary.LittleEndian.PutUint32(b[:], math.Float32bits(v))
			blob.Write(b[:])
		}
	case tensor.FP16:
		var b [2]byte
		for _, v := range t.F16 {
			binary.LittleEndian.PutUint16(b[:], v)
			blob.Write(b[:])
		}
	case tensor.INT8:
		for _, v := range t.I8 {
			blob.WriteByte(byte(v))
		}
	}
}

// decodeGraph reconstructs a graph from the structure section, wiring
// weight tensors to views of the weights blob.
func decodeGraph(graphSec, blob []byte) (*nn.Graph, error) {
	r := &br{data: graphSec}
	g := nn.NewGraph(r.str())
	numNodes := r.u32()
	if numNodes > 1<<20 {
		return nil, fmt.Errorf("artifact: implausible node count %d", numNodes)
	}
	for i := uint32(0); i < numNodes && r.err == nil; i++ {
		n, err := decodeNode(r, blob)
		if err != nil {
			return nil, err
		}
		if err := g.Add(n); err != nil {
			return nil, fmt.Errorf("artifact: decode graph: %w", err)
		}
	}
	numOut := r.u32()
	if numOut > 1<<16 {
		return nil, fmt.Errorf("artifact: implausible output count %d", numOut)
	}
	for i := uint32(0); i < numOut && r.err == nil; i++ {
		g.Outputs = append(g.Outputs, r.str())
	}
	if r.err != nil {
		return nil, fmt.Errorf("artifact: decode graph: %w", r.err)
	}
	if r.off != len(graphSec) {
		return nil, fmt.Errorf("artifact: %d trailing bytes in graph section", len(graphSec)-r.off)
	}
	return g, nil
}

func decodeNode(r *br, blob []byte) (*nn.Node, error) {
	n := &nn.Node{Name: r.str()}
	op, err := nn.ParseOpType(r.str())
	if r.err != nil {
		return nil, r.err
	}
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	n.Op = op
	numIn := r.u32()
	if numIn > 1<<16 {
		return nil, fmt.Errorf("artifact: implausible input count %d", numIn)
	}
	for i := uint32(0); i < numIn && r.err == nil; i++ {
		n.Inputs = append(n.Inputs, r.str())
	}
	var ints [9]int32
	for i := range ints {
		ints[i] = r.i32()
	}
	n.Attrs.KernelH, n.Attrs.KernelW = int(ints[0]), int(ints[1])
	n.Attrs.StrideH, n.Attrs.StrideW = int(ints[2]), int(ints[3])
	n.Attrs.PadH, n.Attrs.PadW = int(ints[4]), int(ints[5])
	n.Attrs.Groups, n.Attrs.OutC, n.Attrs.Scale = int(ints[6]), int(ints[7]), int(ints[8])
	n.Attrs.Alpha = r.f32()
	n.Attrs.Eps = r.f32()
	n.Attrs.Bias = r.u32() == 1
	shapeLen := r.u32()
	if shapeLen > 16 {
		return nil, fmt.Errorf("artifact: implausible shape rank %d", shapeLen)
	}
	for i := uint32(0); i < shapeLen; i++ {
		n.Attrs.Shape = append(n.Attrs.Shape, int(r.i32()))
	}
	numW := r.u32()
	if numW > 16 {
		return nil, fmt.Errorf("artifact: implausible weight count %d", numW)
	}
	for i := uint32(0); i < numW && r.err == nil; i++ {
		key := r.str()
		t, err := decodeWeight(r, blob)
		if err != nil {
			return nil, err
		}
		n.SetWeight(key, t)
	}
	return n, r.err
}

// decodeWeight reads one weight descriptor and binds its tensor to the
// referenced blob range.
func decodeWeight(r *br, blob []byte) (*tensor.Tensor, error) {
	dt := tensor.DType(r.u32())
	if dt != tensor.FP32 && dt != tensor.FP16 && dt != tensor.INT8 {
		return nil, fmt.Errorf("artifact: bad weight dtype %d", int(dt))
	}
	rank := r.u32()
	if rank > 8 {
		return nil, fmt.Errorf("artifact: implausible weight rank %d", rank)
	}
	shape := make(tensor.Shape, rank)
	elems := uint64(1)
	for i := range shape {
		shape[i] = int(r.i32())
		if shape[i] <= 0 || shape[i] > 1<<28 {
			return nil, fmt.Errorf("artifact: implausible weight dim %d", shape[i])
		}
		// Bound the running product so a crafted shape cannot overflow
		// the size check below (dims are individually plausible but
		// rank 8 products can wrap uint64).
		elems *= uint64(shape[i])
		if elems > 1<<36 {
			return nil, fmt.Errorf("artifact: implausible weight element count (shape %v)", shape)
		}
	}
	var q tensor.QuantParams
	q.Scale = r.f32()
	q.Zero = r.i32()
	off := r.u64()
	length := r.u64()
	if r.err != nil {
		return nil, r.err
	}
	want := elems * uint64(dt.Size())
	if length != want {
		return nil, fmt.Errorf("artifact: weight payload %d bytes, shape %v wants %d", length, shape, want)
	}
	if off%WeightAlign != 0 {
		return nil, fmt.Errorf("artifact: weight offset %d not %d-aligned", off, WeightAlign)
	}
	// Subtract rather than add: off+length could wrap uint64 on a
	// crafted offset and slip past an additive bounds check.
	if off > uint64(len(blob)) || length > uint64(len(blob))-off {
		return nil, fmt.Errorf("artifact: weight range [%d:+%d) exceeds weights section (%d bytes)", off, length, len(blob))
	}
	payload := blob[off : off+length]
	t := &tensor.Tensor{Shape: shape, DType: dt, Quant: q}
	switch dt {
	case tensor.FP32:
		t.F32 = f32View(payload)
	case tensor.FP16:
		t.F16 = u16View(payload)
	case tensor.INT8:
		t.I8 = i8View(payload)
	}
	return t, nil
}

// bw writes little-endian primitives into a buffer, remembering the
// first error.
type bw struct {
	buf *bytes.Buffer
	err error
}

func (w *bw) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}

func (w *bw) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}

func (w *bw) i32(v int32)   { w.u32(uint32(v)) }
func (w *bw) f32(v float32) { w.u32(math.Float32bits(v)) }

func (w *bw) str(s string) {
	if len(s) > 1<<20 {
		w.err = fmt.Errorf("string too long (%d bytes)", len(s))
		return
	}
	w.u32(uint32(len(s)))
	w.buf.WriteString(s)
}

// br reads little-endian primitives from a byte slice, remembering the
// first error.
type br struct {
	data []byte
	off  int
	err  error
}

func (r *br) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *br) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *br) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *br) i32() int32   { return int32(r.u32()) }
func (r *br) f32() float32 { return math.Float32frombits(r.u32()) }

func (r *br) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("implausible string length %d", n)
		return ""
	}
	return string(r.bytes(int(n)))
}
