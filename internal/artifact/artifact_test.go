package artifact

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"unsafe"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// testModel builds a small weighted CNN with a calibrated schema.
func testModel(t *testing.T) *Model {
	t.Helper()
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	samples, err := nn.SyntheticCalibration(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		t.Fatal(err)
	}
	return &Model{
		Graph:  g,
		Schema: schema,
		Prov:   Provenance{Tool: "test", Passes: []string{"fold-batchnorm"}},
	}
}

func TestRoundTripDeterministic(t *testing.T) {
	m := testModel(t)
	data1, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if m.Digest == "" {
		t.Fatal("Encode left Digest empty")
	}

	// Re-encode of the same model is byte-stable.
	data2, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("two encodes of the same model differ")
	}

	// Decode and re-save: byte-stable through a load/save cycle.
	loaded, err := Decode(data1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest != m.Digest {
		t.Fatalf("digest drifted through decode: %s vs %s", loaded.Digest, m.Digest)
	}
	resaved, err := loaded.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, resaved) {
		t.Fatal("re-save of loaded artifact is not byte-identical")
	}

	// An independently built identical model produces the same digest.
	again := testModel(t)
	data3, err := again.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if again.Digest != m.Digest {
		t.Fatalf("independent builds disagree on digest: %s vs %s", again.Digest, m.Digest)
	}
	if !bytes.Equal(data1, data3) {
		t.Fatal("independent builds encode differently")
	}
}

func TestRoundTripPreservesModel(t *testing.T) {
	m := testModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph.Name != m.Graph.Name || len(loaded.Graph.Nodes) != len(m.Graph.Nodes) {
		t.Fatalf("graph shape drifted: %s/%d vs %s/%d",
			loaded.Graph.Name, len(loaded.Graph.Nodes), m.Graph.Name, len(m.Graph.Nodes))
	}
	for i, n := range m.Graph.Nodes {
		ln := loaded.Graph.Nodes[i]
		if ln.Name != n.Name || ln.Op != n.Op {
			t.Fatalf("node %d drifted: %s/%s vs %s/%s", i, ln.Name, ln.Op, n.Name, n.Op)
		}
		for _, key := range n.WeightKeys() {
			w, lw := n.Weight(key), ln.Weight(key)
			if lw == nil {
				t.Fatalf("node %s lost weight %s", n.Name, key)
			}
			if !lw.Shape.Equal(w.Shape) || lw.DType != w.DType {
				t.Fatalf("node %s weight %s shape/dtype drifted", n.Name, key)
			}
			// Bitwise-identical payloads.
			for j := range w.F32 {
				if lw.F32[j] != w.F32[j] {
					t.Fatalf("node %s weight %s element %d drifted", n.Name, key, j)
				}
			}
		}
	}
	if len(loaded.Schema.Activations) != len(m.Schema.Activations) {
		t.Fatalf("schema drifted: %d vs %d values", len(loaded.Schema.Activations), len(m.Schema.Activations))
	}
	for name, q := range m.Schema.Activations {
		if loaded.Schema.Activations[name] != q {
			t.Fatalf("schema value %q drifted", name)
		}
	}
	if loaded.Prov.Tool != "test" || len(loaded.Prov.Passes) != 1 {
		t.Fatalf("provenance drifted: %+v", loaded.Prov)
	}
}

// TestLoadedModelCompilesBitwiseIdentical is the deployment contract:
// an engine compiled from the reloaded artifact produces bitwise the
// outputs of an engine compiled from the in-process graph — for both
// the FP32 and the native INT8 plan.
func TestLoadedModelCompilesBitwiseIdentical(t *testing.T) {
	m := testModel(t)
	path := filepath.Join(t.TempDir(), "m.vedz")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	in, err := nn.SyntheticInput(m.Graph, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, a, b inference.Executable) {
		t.Helper()
		wantOuts, err := a.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		gotOuts, err := b.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		for o, want := range wantOuts {
			if d, _ := tensor.MaxAbsDiff(want, gotOuts[o]); d != 0 {
				t.Fatalf("%s: output %q differs by %g", name, o, d)
			}
		}
	}
	srcFP, err := inference.Compile(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	artFP, err := inference.Compile(loaded.Graph)
	if err != nil {
		t.Fatal(err)
	}
	check("fp32", srcFP, artFP)

	srcQ, err := inference.CompileQuantized(m.Graph, m.Schema)
	if err != nil {
		t.Fatal(err)
	}
	artQ, err := inference.CompileQuantized(loaded.Graph, loaded.Schema)
	if err != nil {
		t.Fatal(err)
	}
	check("int8", srcQ, artQ)
}

func TestWeightAlignmentAndZeroCopy(t *testing.T) {
	m := testModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	secs, err := parseSections(data)
	if err != nil {
		t.Fatal(err)
	}
	blob := secs[TagWeights].payload
	// The weights payload starts at a WeightAlign boundary in the file
	// image (parseSections returns views, so pointer arithmetic gives
	// the file offset).
	start := uintptr(unsafe.Pointer(&data[0]))
	off := uintptr(unsafe.Pointer(&blob[0])) - start
	if off%WeightAlign != 0 {
		t.Fatalf("weights section starts at file offset %d, want %d-aligned", off, WeightAlign)
	}
	// On little-endian hosts every weight view aliases the decoded
	// image — zero-copy loading.
	if !hostLittleEndian {
		t.Skip("zero-copy views require a little-endian host")
	}
	loaded, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	end := start + uintptr(len(data))
	for _, n := range loaded.Graph.Nodes {
		for _, key := range n.WeightKeys() {
			w := n.Weight(key)
			if w.DType != tensor.FP32 || w.NumElements() == 0 {
				continue
			}
			p := uintptr(unsafe.Pointer(&w.F32[0]))
			if p < start || p >= end {
				t.Fatalf("node %s weight %s is a copy, want a view into the file image", n.Name, key)
			}
			if p%4 != 0 {
				t.Fatalf("node %s weight %s view misaligned", n.Name, key)
			}
		}
	}
}

func TestRejectsCorruption(t *testing.T) {
	m := testModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string]func([]byte) []byte{
		"bad magic": func(b []byte) []byte {
			b[0] = 'X'
			return b
		},
		"bad version": func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 99)
			return b
		},
		"flipped meta byte": func(b []byte) []byte {
			// First section payload begins after the 12-byte file header
			// and the 20-byte section header.
			b[34] ^= 0xff
			return b
		},
		"flipped weight byte": func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		},
		"truncated": func(b []byte) []byte {
			return b[:len(b)/2]
		},
		"truncated header": func(b []byte) []byte {
			return b[:8]
		},
		"trailing garbage": func(b []byte) []byte {
			return append(b, 0xde, 0xad)
		},
	}
	for name, corrupt := range cases {
		mutated := corrupt(append([]byte(nil), data...))
		if _, err := Decode(mutated); err == nil {
			t.Errorf("%s: Decode accepted corrupted artifact", name)
		}
	}
}

func TestVerifyCanonicalForm(t *testing.T) {
	m := testModel(t)
	path := filepath.Join(t.TempDir(), "m.vedz")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Verify(data); err != nil {
		t.Fatalf("Verify rejected a freshly saved artifact: %v", err)
	}
}

func TestInspect(t *testing.T) {
	m := testModel(t)
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.Digest != m.Digest {
		t.Fatalf("inspect digest %s, want %s", info.Digest, m.Digest)
	}
	if info.Model != m.Graph.Name || info.Nodes != len(m.Graph.Nodes) {
		t.Fatalf("inspect model summary drifted: %+v", info)
	}
	if info.SchemaValues != len(m.Schema.Activations) {
		t.Fatalf("inspect schema values %d, want %d", info.SchemaValues, len(m.Schema.Activations))
	}
	tags := make([]string, len(info.Sections))
	for i, s := range info.Sections {
		tags[i] = s.Tag
	}
	want := []string{TagMeta, TagGraph, TagSchema, TagWeights}
	if len(tags) != len(want) {
		t.Fatalf("sections %v, want %v", tags, want)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("sections %v, want %v", tags, want)
		}
	}
	if info.String() == "" {
		t.Fatal("empty info rendering")
	}
}

func TestEncodeRejectsInvalidGraph(t *testing.T) {
	g := nn.NewGraph("broken")
	m := &Model{Graph: g}
	if _, err := m.Encode(); err == nil {
		t.Fatal("Encode accepted an invalid graph")
	}
	if _, err := (&Model{}).Encode(); err == nil {
		t.Fatal("Encode accepted a nil graph")
	}
}
