package artifact

import (
	"os"
	"testing"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// goldenDigest pins the committed golden artifact
// (testdata/golden.vedz, produced by
// `vedliot-pack pack -model tiny -o ...`). Any byte-level drift of the
// encoder — section order, alignment, weight layout, provenance JSON —
// changes this digest and fails here by name; bump Version and this
// constant together when the format deliberately evolves.
const goldenDigest = "sha256:c67f70728c7dc47e5ecf98180299c9c9028500ac0b7b02613a406ea9ca9194ec"

func TestGoldenArtifact(t *testing.T) {
	data, err := os.ReadFile("testdata/golden.vedz")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Verify(data)
	if err != nil {
		t.Fatal(err)
	}
	if m.Digest != goldenDigest {
		t.Fatalf("golden artifact digest drifted:\n  got  %s\n  want %s\n(format change? bump Version and re-pin)", m.Digest, goldenDigest)
	}
	if m.Graph.Name != "tiny" || len(m.Graph.Nodes) != 5 {
		t.Fatalf("golden model drifted: %s, %d nodes", m.Graph.Name, len(m.Graph.Nodes))
	}
	if m.Prov.Tool != "vedliot-pack" {
		t.Fatalf("golden provenance tool %q", m.Prov.Tool)
	}
	// The golden model still compiles and runs.
	eng, err := inference.Compile(m.Graph)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 16)
	for i := range in.F32 {
		in.F32[i] = float32(i)/16 - 0.5
	}
	if _, err := eng.RunSingle(in); err != nil {
		t.Fatal(err)
	}
	// And an independently rebuilt "tiny" packs to the same digest —
	// the cross-run determinism the plan cache keys on.
	rebuilt := &Model{
		Graph: nn.MLP("tiny", []int{16, 8, 4}, nn.BuildOptions{Weights: true, Seed: 7}),
		Prov:  m.Prov,
	}
	if _, err := rebuilt.Encode(); err != nil {
		t.Fatal(err)
	}
	if rebuilt.Digest != goldenDigest {
		t.Fatalf("rebuilt tiny digests to %s, want golden %s", rebuilt.Digest, goldenDigest)
	}
}
