package artifact

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// Zero-copy weight loading: the weights section stores raw
// little-endian payloads at WeightAlign boundaries, so on a
// little-endian host an FP32/FP16 weight is just a reinterpretation of
// the file image — no per-element parse, no second allocation. Big- or
// misaligned hosts fall back to an element-wise decode with identical
// results. Views alias the loaded file buffer and must be treated as
// read-only (Clone before mutating).

// hostLittleEndian reports the byte order of this process, detected
// once at init.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f32View reinterprets a raw little-endian payload as []float32,
// zero-copy when the host byte order and buffer alignment allow it.
func f32View(b []byte) []float32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*float32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}

// u16View reinterprets a raw little-endian payload as []uint16 (the
// FP16 storage type), zero-copy when possible.
func u16View(b []byte) []uint16 {
	n := len(b) / 2
	if n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%2 == 0 {
		return unsafe.Slice((*uint16)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint16, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint16(b[i*2:])
	}
	return out
}

// i8View reinterprets a raw payload as []int8 — always zero-copy
// (single-byte elements have no endianness).
func i8View(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}
