package artifact

import (
	"fmt"
	"strings"
)

// SectionInfo describes one container section as found in the file.
type SectionInfo struct {
	// Tag is the 4-byte section tag (TagMeta, TagGraph, ...).
	Tag string
	// Bytes is the payload length.
	Bytes int64
	// CRC is the stored CRC32-IEEE of the payload.
	CRC uint32
}

// Info is the inspection summary of a .vedz file — everything
// `vedliot-pack inspect` prints.
type Info struct {
	// Version is the container format version.
	Version int
	// Digest is the whole-file content digest.
	Digest string
	// Sections lists the container sections in file order.
	Sections []SectionInfo
	// Prov is the decoded provenance section.
	Prov Provenance
	// Model is the graph name.
	Model string
	// Nodes is the operator count.
	Nodes int
	// Params is the total weight element count.
	Params int64
	// WeightBytes is the total weight payload size at stored precision.
	WeightBytes int64
	// SchemaValues is the number of calibrated activation mappings (0
	// when the artifact carries no schema).
	SchemaValues int
}

// Inspect decodes artifact bytes and summarizes the container: the
// section table, digest, provenance and model statistics. The bytes
// are fully verified (magic, version, CRCs, graph validity) in the
// process — parsed once, with the section table reused for both the
// model decode and the summary.
func Inspect(data []byte) (*Info, error) {
	secs, err := parseSections(data)
	if err != nil {
		return nil, err
	}
	m, err := decodeSections(secs, DigestBytes(data))
	if err != nil {
		return nil, err
	}
	info := &Info{
		Version:     Version,
		Digest:      m.Digest,
		Prov:        m.Prov,
		Model:       m.Graph.Name,
		Nodes:       len(m.Graph.Nodes),
		Params:      m.Graph.NumParams(),
		WeightBytes: m.Graph.WeightBytes(),
	}
	if m.Schema != nil {
		info.SchemaValues = len(m.Schema.Activations)
	}
	for _, tag := range []string{TagMeta, TagGraph, TagSchema, TagWeights} {
		if s, ok := secs[tag]; ok {
			info.Sections = append(info.Sections, SectionInfo{
				Tag:   s.tag,
				Bytes: int64(len(s.payload)),
				CRC:   s.crc,
			})
		}
	}
	return info, nil
}

// String renders the inspection summary as the aligned text block the
// vedliot-pack CLI prints.
func (i *Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "vedz v%d  %s\n", i.Version, i.Digest)
	fmt.Fprintf(&b, "model    %s: %d nodes, %d params, %d weight bytes\n",
		i.Model, i.Nodes, i.Params, i.WeightBytes)
	if i.Prov.Tool != "" {
		fmt.Fprintf(&b, "packed   by %s", i.Prov.Tool)
		if len(i.Prov.Passes) > 0 {
			fmt.Fprintf(&b, ", passes %v", i.Prov.Passes)
		}
		b.WriteByte('\n')
	}
	if i.Prov.Quantized != "" {
		fmt.Fprintf(&b, "weights  INT8 quantized (%s)\n", i.Prov.Quantized)
	}
	if i.Prov.PrunedSparsity > 0 {
		fmt.Fprintf(&b, "pruned   %.1f%% sparsity\n", i.Prov.PrunedSparsity*100)
	}
	if i.SchemaValues > 0 {
		fmt.Fprintf(&b, "schema   %d calibrated activation ranges (native INT8 servable)\n", i.SchemaValues)
	} else {
		fmt.Fprintf(&b, "schema   none (FP32 serving)\n")
	}
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "section", "bytes", "crc32")
	for _, s := range i.Sections {
		fmt.Fprintf(&b, "%-8s %12d   %08x\n", s.Tag, s.Bytes, s.CRC)
	}
	return b.String()
}
