package bench

import (
	"fmt"
	"math"
	"sort"

	"vedliot/internal/accel"
	"vedliot/internal/fabric"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Fig2 regenerates the COM form-factor comparison.
func Fig2() (*Report, error) {
	r := newReport("Fig. 2 — Computer-On-Module form factors (1=low, 5=high)")
	r.linef("%-20s %6s %6s %6s %6s %6s", "form factor", "size", "I/O", "perf", "archs", "share")
	profiles := microserver.Profiles()
	for _, p := range profiles {
		r.linef("%-20s %6d %6d %6d %6d %6d",
			p.FormFactor, p.Size, p.IOFlexibility, p.Performance, p.Architectures, p.MarketShare)
	}
	get := func(f microserver.FormFactor) microserver.FormFactorProfile {
		p, _ := microserver.ProfileFor(f)
		return p
	}
	r.check("COM-HPC Server is largest and most performant",
		get(microserver.COMHPCServer).Size == 1 && get(microserver.COMHPCServer).Performance == 5)
	r.check("RPi CM4 is smallest with lowest performance",
		get(microserver.RPiCM4).Size == 5 && get(microserver.RPiCM4).Performance == 1)
	r.check("SMARC supports the most architectures", func() bool {
		best := get(microserver.SMARC).Architectures
		for _, p := range profiles {
			if p.Architectures > best {
				return false
			}
		}
		return true
	}())
	return r, nil
}

// Fig3 regenerates the accelerator survey scatter.
func Fig3() (*Report, error) {
	r := newReport("Fig. 3 — Peak performance of DL accelerators (survey)")
	entries := accel.Survey()
	sort.Slice(entries, func(i, j int) bool { return entries[i].PowerW < entries[j].PowerW })
	r.linef("%-16s %12s %10s %10s %-7s", "name", "GOPS", "power W", "TOPS/W", "series")
	for _, e := range entries {
		series := "device"
		if e.IPCore {
			series = "IP core"
		}
		r.linef("%-16s %12.1f %10.3f %10.2f %-7s", e.Name, e.GOPS, e.PowerW, e.TOPSW(), series)
	}
	minW, maxW := math.Inf(1), 0.0
	for _, e := range entries {
		if e.PowerW < minW {
			minW = e.PowerW
		}
		if e.PowerW > maxW {
			maxW = e.PowerW
		}
	}
	r.linef("power range: %.3f W .. %.0f W (%.1f decades)", minW, maxW, math.Log10(maxW/minW))
	r.check("survey spans >= 5 decades of power", maxW/minW >= 1e5)
	r.check("survey holds 30+ parts", len(entries) >= 30)
	return r, nil
}

// TOPSW quantifies the ~1 TOPS/W efficiency cluster.
func TOPSW() (*Report, error) {
	r := newReport("§II-C — efficiency clustering around 1 TOPS/W")
	entries := accel.Survey()
	var logs []float64
	for _, e := range entries {
		logs = append(logs, math.Log10(e.TOPSW()))
	}
	sort.Float64s(logs)
	var sum float64
	for _, l := range logs {
		sum += l
	}
	geo := math.Pow(10, sum/float64(len(logs)))
	med := math.Pow(10, logs[len(logs)/2])
	within3x := 0
	for _, l := range logs {
		if l >= math.Log10(1.0/3) && l <= math.Log10(3) {
			within3x++
		}
	}
	frac := float64(within3x) / float64(len(logs))
	r.linef("parts: %d", len(logs))
	r.linef("geometric-mean efficiency: %.2f TOPS/W", geo)
	r.linef("median efficiency:         %.2f TOPS/W", med)
	r.linef("within 3x of 1 TOPS/W:     %.0f%%", frac*100)
	r.check("geometric mean within 3x of 1 TOPS/W", geo > 1.0/3 && geo < 3)
	r.check("majority of parts within 3x of 1 TOPS/W", frac >= 0.5)
	return r, nil
}

// fig4Sweep evaluates one model over the paper's platform x precision x
// batch grid, appending rows and returning the measurements.
func fig4Sweep(r *Report, g *nn.Graph, batches []int) ([]accel.Measurement, error) {
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	var all []accel.Measurement
	r.linef("%-18s %-5s %3s %12s %9s %8s %9s", "platform", "prec", "B", "GOPS", "power W", "ms", "bound")
	for _, dev := range accel.EvaluationPlatforms() {
		for _, prec := range []tensor.DType{tensor.INT8, tensor.FP16, tensor.FP32} {
			if !dev.Supports(prec) {
				continue
			}
			w, err := accel.WorkloadFromGraph(g, prec)
			if err != nil {
				return nil, err
			}
			for _, b := range batches {
				m, err := dev.Evaluate(w, prec, b)
				if err != nil {
					return nil, err
				}
				all = append(all, m)
				r.linef("%-18s %-5s %3d %12.0f %9.1f %8.1f %9s",
					dev.Name, prec, b, m.GOPS, m.PowerW, m.LatencyMS, m.Bound)
			}
		}
	}
	return all, nil
}

func fig4Checks(r *Report, all []accel.Measurement) {
	// INT8 > FP16 > FP32 per device/batch.
	precOrder := true
	byKey := map[string]map[tensor.DType]float64{}
	for _, m := range all {
		key := fmt.Sprintf("%s/%d", m.Device, m.Batch)
		if byKey[key] == nil {
			byKey[key] = map[tensor.DType]float64{}
		}
		byKey[key][m.Precision] = m.GOPS
	}
	for _, g := range byKey {
		if i8, ok := g[tensor.INT8]; ok {
			if f16, ok2 := g[tensor.FP16]; ok2 && i8 <= f16 {
				precOrder = false
			}
		}
		// FP16 >= FP32: CPUs without native half support run FP16 at
		// FP32 rate, so equality is legitimate there.
		if f16, ok := g[tensor.FP16]; ok {
			if f32, ok2 := g[tensor.FP32]; ok2 && f16 < f32 {
				precOrder = false
			}
		}
	}
	r.check("INT8 > FP16 >= FP32 throughput per device", precOrder)

	// Batch 8 >= batch 1 per device/precision.
	batchHelps := true
	byDP := map[string]map[int]float64{}
	for _, m := range all {
		key := fmt.Sprintf("%s/%s", m.Device, m.Precision)
		if byDP[key] == nil {
			byDP[key] = map[int]float64{}
		}
		byDP[key][m.Batch] = m.GOPS
	}
	for _, g := range byDP {
		if b1, ok := g[1]; ok {
			if b8, ok2 := g[8]; ok2 && b8 < b1 {
				batchHelps = false
			}
		}
	}
	r.check("batching never hurts throughput", batchHelps)

	// Embedded parts beat desktop GPUs on efficiency; GPUs on raw GOPS.
	var bestEffEmbedded, bestEffGPU, bestGopsEmbedded, bestGopsGPU float64
	for _, m := range all {
		switch m.Class {
		case accel.ClassGPU:
			if m.TOPSW() > bestEffGPU {
				bestEffGPU = m.TOPSW()
			}
			if m.GOPS > bestGopsGPU {
				bestGopsGPU = m.GOPS
			}
		case accel.ClassEmbeddedGPU, accel.ClassASIC, accel.ClassFPGA:
			if m.TOPSW() > bestEffEmbedded {
				bestEffEmbedded = m.TOPSW()
			}
			if m.GOPS > bestGopsEmbedded {
				bestGopsEmbedded = m.GOPS
			}
		}
	}
	r.check("GPU wins raw throughput", bestGopsGPU > bestGopsEmbedded)
	r.check("embedded parts win efficiency", bestEffEmbedded > bestEffGPU)
}

// Fig4YoloV4 regenerates the paper's headline YoloV4 sweep.
func Fig4YoloV4() (*Report, error) {
	r := newReport("Fig. 4 — YoloV4@608 measured performance vs power")
	g := nn.YoloV4(608, 80, nn.BuildOptions{})
	all, err := fig4Sweep(r, g, []int{1, 8})
	if err != nil {
		return nil, err
	}
	fig4Checks(r, all)
	return r, nil
}

// Fig4Companions sweeps ResNet50 and MobileNetV3 (§II-C names all three
// models).
func Fig4Companions() (*Report, error) {
	r := newReport("§II-C — ResNet50@224 and MobileNetV3@224 sweeps")
	r.linef("--- ResNet50 ---")
	resnet, err := fig4Sweep(r, nn.ResNet50(224, nn.BuildOptions{}), []int{1, 8})
	if err != nil {
		return nil, err
	}
	r.linef("--- MobileNetV3-Large ---")
	mobile, err := fig4Sweep(r, nn.MobileNetV3(224, nn.BuildOptions{}), []int{1, 8})
	if err != nil {
		return nil, err
	}
	fig4Checks(r, append(resnet, mobile...))
	// MobileNet is lighter: latency on a common device must be lower.
	var resLat, mobLat float64
	for _, m := range resnet {
		if m.Device == "Xavier NX" && m.Precision == tensor.INT8 && m.Batch == 1 {
			resLat = m.LatencyMS
		}
	}
	for _, m := range mobile {
		if m.Device == "Xavier NX" && m.Precision == tensor.INT8 && m.Batch == 1 {
			mobLat = m.LatencyMS
		}
	}
	r.linef("Xavier NX INT8 B1: ResNet50 %.1f ms vs MobileNetV3 %.1f ms", resLat, mobLat)
	r.check("MobileNetV3 faster than ResNet50", mobLat < resLat)
	return r, nil
}

// URECS sweeps module mixes against the uRECS power envelope.
func URECS() (*Report, error) {
	r := newReport("§II-A — uRECS power envelope (< 15 W)")
	mixes := [][]string{
		{"SMARC ARM"},
		{"Jetson Xavier NX"},
		{"Jetson Xavier NX", "SMARC ARM"},
		{"Jetson Xavier NX", "Xilinx Kria K26"},
		{"SMARC FPGA-SoC", "SMARC ARM"},
		{"Jetson Xavier NX", "Jetson Xavier NX"}, // must be rejected
	}
	allWithinBudget := true
	rejectedOverBudget := false
	r.linef("%-45s %10s %10s %s", "module mix", "idle W", "max W", "fits")
	for _, mix := range mixes {
		chassis := microserver.NewURECS()
		fits := true
		for slot, name := range mix {
			m, err := microserver.FindModule(name)
			if err != nil {
				return nil, err
			}
			if err := chassis.Insert(slot, m); err != nil {
				fits = false
				break
			}
		}
		label := fmt.Sprintf("%v", mix)
		if fits {
			idle := chassis.PowerW(nil)
			maxW := chassis.MaxPowerW()
			r.linef("%-45s %10.1f %10.1f %v", label, idle, maxW, fits)
			if maxW > 15+chassis.BaseboardW {
				allWithinBudget = false
			}
		} else {
			r.linef("%-45s %10s %10s rejected", label, "-", "-")
			rejectedOverBudget = true
		}
	}
	r.check("all accepted mixes stay within the envelope", allWithinBudget)
	r.check("over-budget mix rejected", rejectedOverBudget)
	return r, nil
}

// Reconfiguration exercises the run-time adaptation story: FPGA partial
// reconfiguration between power/performance footprints plus fabric
// re-parameterization.
func Reconfiguration() (*Report, error) {
	r := newReport("§II-A — run-time reconfiguration")
	profiles := []accel.ArrayConfig{
		{Rows: 16, Cols: 16, ClockGHz: 0.2, OnChipKiB: 256},
		{Rows: 64, Cols: 64, ClockGHz: 0.5, OnChipKiB: 1024},
	}
	ra, err := accel.NewReconfigurable(profiles, 60)
	if err != nil {
		return nil, err
	}
	g := nn.MobileNetV3(224, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		return nil, err
	}
	r.linef("%-12s %10s %10s %8s", "deadline", "profile", "ms", "power W")
	var lowPowerChosenForLoose, highPerfChosenForTight bool
	for _, deadline := range []float64{500, 60, 5} {
		idx := ra.BestProfileFor(w, tensor.INT8, deadline)
		delay, err := ra.Switch(idx)
		if err != nil {
			return nil, err
		}
		m, err := ra.Active().Evaluate(w, tensor.INT8, 1)
		if err != nil {
			return nil, err
		}
		r.linef("%-12.0f %10d %10.1f %8.2f (reconfig %.0f ms)", deadline, idx, m.LatencyMS, m.PowerW, delay)
		if deadline == 500 && idx == 0 {
			lowPowerChosenForLoose = true
		}
		if deadline == 5 && idx == 1 {
			highPerfChosenForTight = true
		}
	}
	r.check("loose deadline selects the low-power profile", lowPowerChosenForLoose)
	r.check("tight deadline selects the high-performance profile", highPerfChosenForTight)

	// Fabric re-parameterization.
	net := fabric.NewNetwork()
	net.AddNode("node-a")
	net.AddNode("node-b")
	if err := net.Connect("node-a", "node-b", fabric.Ethernet1G); err != nil {
		return nil, err
	}
	before, _ := net.TransferMS("node-a", "node-b", 8<<20)
	if err := net.Reconfigure("node-a", "node-b", fabric.Ethernet10G); err != nil {
		return nil, err
	}
	after, _ := net.TransferMS("node-a", "node-b", 8<<20)
	r.linef("fabric 8 MiB transfer: 1G %.1f ms -> 10G %.1f ms", before, after)
	r.check("fabric reconfiguration reduces transfer time", after < before)
	return r, nil
}

// AblationRoofline contrasts the roofline device model with naive
// peak-only accounting, explaining why Fig. 4's measured GOPS sit far
// below Fig. 3's peaks.
func AblationRoofline() (*Report, error) {
	r := newReport("Ablation — roofline vs peak-only performance model")
	g := nn.YoloV4(608, 80, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	r.linef("%-18s %12s %12s %8s", "platform", "peak GOPS", "roofline", "ratio")
	allBelow := true
	for _, dev := range accel.EvaluationPlatforms() {
		prec := dev.BestPrecision()
		w, err := accel.WorkloadFromGraph(g, prec)
		if err != nil {
			return nil, err
		}
		peak, err := dev.PeakOnly(w, prec, 1)
		if err != nil {
			return nil, err
		}
		roof, err := dev.Evaluate(w, prec, 1)
		if err != nil {
			return nil, err
		}
		if roof.GOPS > peak.GOPS {
			allBelow = false
		}
		r.linef("%-18s %12.0f %12.0f %8.2f", dev.Name, peak.GOPS, roof.GOPS, roof.GOPS/peak.GOPS)
	}
	r.check("roofline always at or below peak", allBelow)
	return r, nil
}
