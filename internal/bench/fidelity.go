package bench

// Fidelity control: the harness defaults to full paper fidelity, and
// `go test -short` switches the few training-bound experiments to
// reduced iteration counts so the suite stays fast in CI. Every
// experiment still runs and every shape check is still enforced in
// quick mode; the motor-condition study intentionally keeps full
// fidelity in both modes so one end-to-end training case is always
// exercised unreduced.

var quick bool

// SetQuick toggles reduced-fidelity mode. Not safe for concurrent use
// with running experiments; tests set it once up front.
func SetQuick(q bool) { quick = q }

// Quick reports whether reduced-fidelity mode is active.
func Quick() bool { return quick }

// pick returns full normally and short under reduced fidelity.
func pick(full, short int) int {
	if quick {
		return short
	}
	return full
}
