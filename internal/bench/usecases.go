package bench

import (
	"vedliot/internal/accel"
	"vedliot/internal/core"
	"vedliot/internal/dataset"
	"vedliot/internal/fabric"
	"vedliot/internal/kenning"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/safety"
	"vedliot/internal/tensor"
	"vedliot/internal/track"
	"vedliot/internal/train"
)

// SafetyMonitors reproduces the §IV-B monitor evaluation: injected
// sensor errors and injected weight faults, with detection and
// false-alarm rates.
func SafetyMonitors() (*Report, error) {
	r := newReport("§IV-B — safety monitors under fault injection")

	// Input monitors.
	clean := dataset.CleanSeries(dataset.SeriesConfig{N: 6000, Period: 50, Noise: 0.05, Seed: 11})
	bad := dataset.InjectErrors(clean, dataset.InjectConfig{Rate: 0.01, Seed: 12})
	cfg := safety.DefaultSeriesMonitorConfig()
	rep := safety.EvaluateSeriesMonitor(bad, cfg, cfg.Window/2)
	r.linef("input monitor (rate 1%% injected):")
	for kind := dataset.ErrOutlier; kind < dataset.NumErrorKinds; kind++ {
		r.linef("  %-12s recall %.2f", kind, rep.Recall[kind])
	}
	r.linef("  false-alarm rate %.4f", rep.FalseAlarmRate)
	r.check("outlier recall >= 0.6", rep.Recall[dataset.ErrOutlier] >= 0.6)
	r.check("stuck-at recall >= 0.6", rep.Recall[dataset.ErrStuckAt] >= 0.6)
	r.check("noise-burst recall >= 0.6", rep.Recall[dataset.ErrNoiseBurst] >= 0.6)
	r.check("false-alarm rate <= 5%", rep.FalseAlarmRate <= 0.05)

	// Image-noise monitor.
	cleanImg := dataset.SceneImage(64, 64, 0, 13)
	noisyImg := dataset.SceneImage(64, 64, 0.25, 13)
	cs, ns := safety.ImageNoiseScore(cleanImg), safety.ImageNoiseScore(noisyImg)
	r.linef("image monitor: clean score %.4f, noisy score %.4f", cs, ns)
	r.check("image monitor separates noise", ns > 2*cs)

	// Output robustness service against weight faults.
	reference := nn.LeNet(16, 4, nn.BuildOptions{Weights: true, Seed: 14})
	deployed := reference.Clone()
	svc, err := safety.NewRobustnessService(reference, 1e-4)
	if err != nil {
		return nil, err
	}
	probe := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range probe.F32 {
		probe.F32[i] = float32(i%13)/13 - 0.5
	}
	// Healthy submission.
	healthyOut, err := runModel(deployed, probe)
	if err != nil {
		return nil, err
	}
	v1, err := svc.Check(probe, healthyOut)
	if err != nil {
		return nil, err
	}
	// Faulty submission.
	safety.InjectWeightFaults(deployed, 300, 15)
	faultyOut, err := runModel(deployed, probe)
	if err != nil {
		return nil, err
	}
	v2, err := svc.Check(probe, faultyOut)
	if err != nil {
		return nil, err
	}
	r.linef("robustness service: healthy divergence %.2g, faulty divergence %.2g", v1.Divergence, v2.Divergence)
	r.check("healthy output accepted", v1.OK)
	r.check("300 weight bit flips detected", !v2.OK)
	return r, nil
}

func runModel(g *nn.Graph, in *tensor.Tensor) (*tensor.Tensor, error) {
	target := &kenning.CPUTarget{}
	if err := target.Deploy(g); err != nil {
		return nil, err
	}
	out, _, err := target.Infer(in)
	return out, err
}

// PAEB reproduces the §V-A offload study: the braking-distance deadline
// shrinks with speed, and the offload decision flips with network
// quality.
func PAEB() (*Report, error) {
	r := newReport("§V-A — Pedestrian Automatic Emergency Braking offload study")
	g := nn.YoloV4(416, 80, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		return nil, err
	}
	onCar, err := accel.FindDevice("Xavier NX")
	if err != nil {
		return nil, err
	}
	edge, err := accel.FindDevice("GTX1660")
	if err != nil {
		return nil, err
	}
	const (
		frameBytes  = 500_000
		resultBytes = 2_000
		radioTxW    = 2.5
	)
	r.linef("%-14s %-12s %9s %9s %9s %8s %9s", "speed km/h", "network", "deadline", "local ms", "edge ms", "offload", "ok")
	offloadOn5G, localOnLTE := false, false
	for _, speed := range []float64{30, 50, 80} {
		// Perception deadline: allow ~10% of the time-to-stop from
		// 25 m at this speed (v in m/s; crude but monotone in speed).
		v := speed / 3.6
		deadline := 0.10 * (25 / v) * 1000
		for _, link := range fabric.MobileProfiles() {
			plan, err := core.PlanOffload(w, onCar, edge, tensor.INT8, link, frameBytes, resultBytes, deadline, radioTxW)
			if err != nil {
				return nil, err
			}
			r.linef("%-14.0f %-12s %9.0f %9.1f %9.1f %8v %9v",
				speed, link.Name, deadline, plan.LocalMS, plan.EdgeMS, plan.Offload, plan.MeetsDeadline)
			if speed == 50 && link.Name == fabric.NR5GmmWave.Name && plan.Offload {
				offloadOn5G = true
			}
			if speed == 50 && link.Name == fabric.LTE.Name && !plan.Offload {
				localOnLTE = true
			}
		}
	}
	r.check("LTE keeps inference on-car", localOnLTE)
	r.check("5G mmWave enables offloading", offloadOn5G)
	return r, nil
}

// MotorCondition reproduces the §V-B motor-monitoring study: classifier
// accuracy on synthetic vibration signatures plus the battery-life
// budget on an MCU-class NPU.
func MotorCondition() (*Report, error) {
	r := newReport("§V-B — motor condition classification (battery box)")
	cfg := dataset.DefaultMotorConfig()
	samples := dataset.MotorVibration(900, cfg)
	dataset.Normalize(samples)
	trainSet, testSet := dataset.Split(samples, 0.25)

	// Feature front-end + MLP head (the trainable configuration).
	g := nn.MLP("motor-clf", []int{cfg.Window, 64, int(dataset.NumMotorStates)},
		nn.BuildOptions{Weights: true, Seed: 31})
	if _, err := train.SGD(g, trainSet, train.Config{Epochs: 20, LR: 0.05, BatchSize: 16, Seed: 32}); err != nil {
		return nil, err
	}
	ev, err := kenning.Evaluate(g, &kenning.CPUTarget{}, testSet, int(dataset.NumMotorStates))
	if err != nil {
		return nil, err
	}
	r.linef("classifier accuracy on %d test windows: %.3f", len(testSet), ev.Confusion.Accuracy())
	for st := dataset.MotorState(0); st < dataset.NumMotorStates; st++ {
		r.linef("  %-14s recall %.2f", st, ev.Confusion.Recall(int(st)))
	}
	r.check("accuracy >= 0.8", ev.Confusion.Accuracy() >= 0.8)
	r.check("bearing-fault recall >= 0.8", ev.Confusion.Recall(int(dataset.MotorBearingFault)) >= 0.8)

	// Energy budget on the MCU NPU: one inference per second.
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	npu, err := accel.FindDevice("MAX78000 NPU")
	if err != nil {
		return nil, err
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		return nil, err
	}
	m, err := npu.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		return nil, err
	}
	// 2x AA lithium: ~3000 mAh @ 3 V = 32.4 kJ.
	const batteryMJ = 32.4e6
	perInferenceMJ := m.EnergyPerInferenceMJ()
	idleMJPerS := npu.IdleW * 1000
	perSecondMJ := perInferenceMJ + idleMJPerS
	days := batteryMJ / perSecondMJ / 86400
	r.linef("NPU inference: %.2f ms, %.3f mJ; 1 Hz duty -> battery life %.0f days", m.LatencyMS, perInferenceMJ, days)
	r.check("inference under 50 ms", m.LatencyMS < 50)
	r.check("battery life > 30 days at 1 Hz", days > 30)
	return r, nil
}

// ArcDetection reproduces the §V-B arc-detection study: end-to-end
// latency from spark to decision and the false-negative/threshold
// trade-off.
func ArcDetection() (*Report, error) {
	r := newReport("§V-B — DC arc detection (latency + FNR)")
	cfg := dataset.DefaultArcConfig()
	arcs := dataset.ArcCurrent(600, cfg)

	// Detector: windowed noise-power score with threshold sweep.
	scores := make([]float64, len(arcs))
	truth := make([]bool, len(arcs))
	for i, a := range arcs {
		scores[i] = waveformNoiseScore(a.X)
		truth[i] = a.Arc
	}
	curve, err := kenning.PRCurve(scores, truth)
	if err != nil {
		return nil, err
	}
	// Find the lowest threshold reaching recall ~1 (ultra-low FNR).
	var opPoint kenning.PRPoint
	for _, p := range curve {
		opPoint = p
		if p.Recall >= 0.995 {
			break
		}
	}
	r.linef("detector operating point: threshold %.3f, recall %.3f (FNR %.3f), precision %.3f",
		opPoint.Threshold, opPoint.Recall, 1-opPoint.Recall, opPoint.Precision)
	r.check("FNR <= 1%", 1-opPoint.Recall <= 0.01)
	r.check("precision at that point >= 0.7", opPoint.Precision >= 0.7)

	// Latency budget: sensing window fill + inference on the FPGA DPU.
	g := nn.ArcNet(cfg.Window, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	dev, err := accel.FindDevice("ZU3 B2304")
	if err != nil {
		return nil, err
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		return nil, err
	}
	m, err := dev.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		return nil, err
	}
	// Worst case: arc ignites right after a window starts -> full
	// window fill + preprocessing + inference.
	windowMS := float64(cfg.Window) / cfg.SampleRate * 1000
	const preprocessMS = 0.2
	total := windowMS + preprocessMS + m.LatencyMS
	r.linef("latency budget: window %.2f ms + preprocess %.2f ms + inference %.2f ms = %.2f ms",
		windowMS, preprocessMS, m.LatencyMS, total)
	r.check("spark-to-decision under 25 ms", total < 25)
	return r, nil
}

// SmartMirror reproduces the §V-C pipeline (Fig. 5): per-stage compute
// of the four networks plus trackers and fusion, against the 30 FPS
// budget and the uRECS power envelope.
func SmartMirror() (*Report, error) {
	r := newReport("§V-C / Fig. 5 — smart mirror pipeline on uRECS")

	stages := []struct {
		name string
		g    *nn.Graph
		rate float64 // invocations per second
	}{
		{"face detection (WiderFace)", nn.FaceDetectNet(96, nn.BuildOptions{}), 30},
		{"face embedding (FaceNet)", nn.FaceEmbedNet(64, 128, nn.BuildOptions{}), 10},
		{"object+gesture (YOLO tiny)", nn.YoloV4Tiny(416, 80, nn.BuildOptions{}), 15},
		{"gesture classifier", nn.GestureNet(64, 8, nn.BuildOptions{}), 15},
		{"speech (DeepSpeech-like)", nn.SpeechNet(100, 26, 29, nn.BuildOptions{}), 2},
	}
	dev, err := accel.FindDevice("Xavier NX")
	if err != nil {
		return nil, err
	}
	r.linef("%-28s %10s %10s %12s", "stage", "ms/frame", "Hz", "GPU load %")
	var totalLoad float64
	ok := true
	for _, st := range stages {
		if err := st.g.InferShapes(1); err != nil {
			return nil, err
		}
		w, err := accel.WorkloadFromGraph(st.g, tensor.INT8)
		if err != nil {
			return nil, err
		}
		m, err := dev.Evaluate(w, tensor.INT8, 1)
		if err != nil {
			return nil, err
		}
		load := m.LatencyMS * st.rate / 1000 * 100
		totalLoad += load
		if m.LatencyMS > 1000/st.rate {
			ok = false
		}
		r.linef("%-28s %10.2f %10.0f %12.1f", st.name, m.LatencyMS, st.rate, load)
	}
	r.linef("aggregate accelerator load: %.0f%%", totalLoad)
	r.check("every stage meets its frame budget", ok)
	r.check("aggregate load under 100%", totalLoad < 100)

	// Tracking + fusion on two people crossing the mirror's view.
	tracker := track.NewTracker(track.DefaultKalmanConfig(), 60, 3)
	for i := 0; i < 30; i++ {
		tracker.Step([]track.Detection{
			{P: track.Point{X: 100 + float64(i)*8, Y: 200}, Label: "alice"},
			{P: track.Point{X: 500 - float64(i)*8, Y: 220}, Label: "bob"},
		})
	}
	r.linef("tracker holds %d identities after 30 frames of crossing paths", len(tracker.Tracks()))
	r.check("both identities tracked through crossing", len(tracker.Tracks()) == 2)

	// Power envelope: Jetson NX module in uRECS at the aggregate load.
	chassis := microserver.NewURECS()
	nx, err := microserver.FindModule("Jetson Xavier NX")
	if err != nil {
		return nil, err
	}
	if err := chassis.Insert(0, nx); err != nil {
		return nil, err
	}
	power := chassis.PowerW(map[int]float64{0: totalLoad / 100})
	r.linef("uRECS power at this load: %.1f W (envelope 15 W + %.1f W baseboard)", power, chassis.BaseboardW)
	r.check("pipeline fits the uRECS envelope", power < 15+chassis.BaseboardW)
	return r, nil
}
