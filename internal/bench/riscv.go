package bench

import (
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/rvbackend"
	"vedliot/internal/tensor"
)

// RISCVBench lowers the smart-mirror gesture classifier onto the
// emulated RISC-V SoC and reproduces the paper's CFU argument (§II-B)
// at model scale: the vector-MAC firmware must be bit-exact against the
// native INT8 engine and at least 2x faster in measured cycles than the
// scalar firmware on the same core.
func RISCVBench() (*Report, error) {
	r := newReport("§II-B — INT8 firmware on the emulated RISC-V+CFU SoC")

	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		return nil, err
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		return nil, err
	}
	q, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
	if err != nil {
		return nil, err
	}
	const batch = 8
	in, err := nn.SyntheticInput(g, batch, 11)
	if err != nil {
		return nil, err
	}
	want, err := q.Run(in)
	if err != nil {
		return nil, err
	}
	r.linef("model %s, batch %d, native INT8 engine as reference", g.Name, batch)

	cycles := map[bool]uint64{}
	for _, noCFU := range []bool{false, true} {
		b := rvbackend.Backend{Schema: schema, NoCFU: noCFU}
		exe, err := b.Compile(g)
		if err != nil {
			return nil, err
		}
		got, err := exe.Run(in)
		if err != nil {
			return nil, err
		}
		p := exe.(*rvbackend.Program)
		cycles[noCFU] = p.CyclesPerInference()
		exact := bitExact(want, got)
		top1 := top1Agreement(want[g.Outputs[0]], got[g.Outputs[0]], batch)
		info := p.Image()
		lat, _ := p.PredictLatency(1)
		r.linef("%-16s %8d cycles/inference  %6.2fms @100MHz  text %d words  bit-exact %v",
			b.Name(), cycles[noCFU], float64(lat)/float64(time.Millisecond), info.TextWords, exact)
		r.check("firmware_bit_exact_"+b.Name(), exact)
		r.check("top1_parity_"+b.Name(), top1 == 1)
	}

	speedup := float64(cycles[true]) / float64(cycles[false])
	r.linef("CFU speedup: %.2fx in measured cycles (scalar %d vs cfu %d)",
		speedup, cycles[true], cycles[false])
	r.check("cfu_speedup_ge_2x", speedup >= 2)
	r.metric("riscv_cfu_cycle_speedup", "x", speedup)
	r.metric("riscv_cfu_cycles_per_inference", "cycles", float64(cycles[false]))
	return r, nil
}

// bitExact reports whether two output maps carry identical FP32 values.
func bitExact(want, got map[string]*tensor.Tensor) bool {
	if len(want) != len(got) {
		return false
	}
	for k, wt := range want {
		gt, ok := got[k]
		if !ok || !wt.Shape.Equal(gt.Shape) {
			return false
		}
		for i := range wt.F32 {
			if wt.F32[i] != gt.F32[i] {
				return false
			}
		}
	}
	return true
}

// top1Agreement returns the fraction of samples whose argmax class
// matches between two batched output tensors.
func top1Agreement(want, got *tensor.Tensor, batch int) float64 {
	if want == nil || got == nil || len(want.F32) != len(got.F32) || batch <= 0 {
		return 0
	}
	per := len(want.F32) / batch
	if per == 0 {
		return 0
	}
	agree := 0
	for s := 0; s < batch; s++ {
		if argmax(want.F32[s*per:(s+1)*per]) == argmax(got.F32[s*per:(s+1)*per]) {
			agree++
		}
	}
	return float64(agree) / float64(batch)
}

func argmax(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
