package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"vedliot/internal/artifact"
	"vedliot/internal/cluster"
	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ClusterStudy exercises the fleet-serving layer at all of its scales:
//
//  1. Replica scaling — a synthetic open-loop trace replayed (in exact
//     virtual time, so the result is machine-independent) against 1, 2
//     and 4 CPU-equivalent replicas, showing aggregate throughput
//     scaling with replica count.
//  2. Heterogeneous fleet — the real serving path on a uRECS chassis
//     mixing the host CPU engine with two distinct accelerator device
//     models behind the one Backend interface: functional parity with
//     the reference engine, cost-aware routing telemetry and the
//     chassis power view.
//  3. Artifact deployment — the model round-trips through a .vedz
//     deployment artifact and replicas deploy from the registry's
//     fleet-wide plan cache: replica cold-start becomes load + bind
//     instead of lower + bind, measured as the cold-compile vs
//     cache-hit speedup, with bitwise parity against the in-process
//     path.
func ClusterStudy() (*Report, error) {
	r := newReport("Platform — heterogeneous fleet serving")

	// --- Part 1: throughput vs. replica count -------------------------
	// A CPU-equivalent replica: 2ms service (≈ the smart-mirror face
	// detector on an embedded CPU), COM Express Xeon-D power envelope.
	requests := pick(2000, 400)
	trace := cluster.OpenLoopTrace(requests, 2000, 7)
	cpuFleet := func(k int) []cluster.SimReplica {
		fleet := make([]cluster.SimReplica, k)
		for i := range fleet {
			fleet[i] = cluster.SimReplica{
				Name: fmt.Sprintf("cpu%d", i), Service: 2 * time.Millisecond, IdleW: 25, MaxW: 45,
			}
		}
		return fleet
	}
	r.linef("open-loop trace: %d requests at 2000 req/s (span %v)", requests, trace.Duration().Round(time.Millisecond))
	r.linef("%-10s %12s %12s %12s %12s", "replicas", "throughput", "p50", "p95", "energy")
	tput := map[int]float64{}
	for _, k := range []int{1, 2, 4} {
		res, err := cluster.SimulateTrace(cpuFleet(k), trace)
		if err != nil {
			return nil, err
		}
		tput[k] = res.Throughput
		r.linef("%-10d %9.0f/s %12v %12v %10.1f J", k, res.Throughput,
			res.Latency.P50.Round(time.Microsecond), res.Latency.P95.Round(time.Microsecond), res.EnergyJ)
		r.metric(fmt.Sprintf("throughput_%dx_cpu", k), "req/s", res.Throughput)
		r.metric(fmt.Sprintf("p95_latency_%dx_cpu", k), "ns", float64(res.Latency.P95))
	}
	scaling := tput[4] / tput[1]
	r.linef("aggregate throughput 1 -> 4 replicas: %.2fx", scaling)
	r.metric("throughput_scaling_1_to_4", "x", scaling)
	r.check("throughput scales >=1.5x from 1 to 4 CPU-equivalent replicas", scaling >= 1.5)

	// --- Part 2: heterogeneous fleet, real serving path ---------------
	chassis := microserver.NewURECS()
	for slot, name := range []string{"SMARC ARM", "Jetson Xavier NX", "Coral SoM"} {
		m, err := microserver.FindModule(name)
		if err != nil {
			return nil, err
		}
		if err := chassis.Insert(slot, m); err != nil {
			return nil, err
		}
	}
	sched := cluster.NewScheduler(chassis, cluster.Config{QueueDepth: 256})
	defer sched.Close()
	g := nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 91})
	dep, err := sched.Deploy(g)
	if err != nil {
		return nil, err
	}
	eng, err := inference.Compile(g)
	if err != nil {
		return nil, err
	}
	in := tensor.New(tensor.FP32, 1, 1, 32, 32)
	for i := range in.F32 {
		in.F32[i] = float32(i%13)/13 - 0.5
	}
	want, err := eng.RunSingle(in)
	if err != nil {
		return nil, err
	}

	burst := pick(96, 32)
	tickets := make([]*cluster.Ticket, 0, burst)
	for i := 0; i < burst; i++ {
		tk, err := sched.Submit(g.Name, map[string]*tensor.Tensor{g.Inputs[0]: in})
		if err != nil {
			return nil, err
		}
		tickets = append(tickets, tk)
	}
	parity := 0.0
	var lats []time.Duration
	for _, tk := range tickets {
		outs, err := tk.Wait()
		if err != nil {
			return nil, err
		}
		if d, _ := tensor.MaxAbsDiff(want, outs[g.Outputs[0]]); d > parity {
			parity = d
		}
		lats = append(lats, tk.Latency())
	}
	sum := cluster.Summarize(lats)

	st := dep.Stats()
	r.linef("")
	r.linef("uRECS fleet, %s, burst of %d async requests:", g.Name, burst)
	for _, line := range st.ReplicaTable() {
		r.linef("%s", line)
	}
	distinctAccel := map[string]bool{}
	cpuServed, accelServed := int64(0), int64(0)
	var fastest cluster.ReplicaStats
	for _, rs := range st.Replicas {
		r.metric("served_"+rs.Backend, "req", float64(rs.Served))
		if rs.Modeled > 0 {
			distinctAccel[rs.Backend] = true
			accelServed += rs.Served
			if fastest.Backend == "" || rs.Modeled < fastest.Modeled {
				fastest = rs
			}
		} else {
			cpuServed += rs.Served
		}
	}
	r.linef("burst latency: mean %v p50 %v p95 %v | chassis max power %.1f W",
		sum.Mean.Round(time.Microsecond), sum.P50.Round(time.Microsecond),
		sum.P95.Round(time.Microsecond), chassis.MaxPowerW())
	r.metric("hetero_burst_p95", "ns", float64(sum.P95))
	r.metric("hetero_parity", "maxabs", parity)

	r.check("fleet results bit-exact vs reference engine", parity == 0)
	r.check("fleet spans CPU engine + >=2 distinct accel device models",
		cpuServed > 0 && len(distinctAccel) >= 2)
	r.check("every backend served requests (warm-up probes each replica)",
		st.Completed == int64(burst) && allServed(st.Replicas))
	r.check("cost-aware routing favors modeled-fast accelerators",
		accelServed > cpuServed && fastest.Served > 0)

	// --- Part 3: artifact deployment and the plan cache ---------------
	if err := artifactStudy(r, g, want, in); err != nil {
		return nil, err
	}
	return r, nil
}

// artifactStudy measures the deployment-artifact path: .vedz
// round-trip, plan-cache cold-compile vs cache-hit cold-start, and
// fleet parity when serving from the artifact.
func artifactStudy(r *Report, g *nn.Graph, want, in *tensor.Tensor) error {
	dir, err := os.MkdirTemp("", "vedliot-bench-artifact")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.vedz")
	if err := artifact.Save(path, &artifact.Model{Graph: g, Prov: artifact.Provenance{Tool: "vedliot-bench"}}); err != nil {
		return err
	}
	loadStart := time.Now()
	m, err := artifact.Load(path)
	if err != nil {
		return err
	}
	loadT := time.Since(loadStart)
	data, _ := os.ReadFile(path)

	// Cold start without a cache: every replica lowers the plan.
	plans := inference.NewPlanCache()
	key := m.Digest + "|cpu-engine"
	coldStart := time.Now()
	coldExe, _, err := plans.Compile(key, inference.CPUBackend{}, m.Graph)
	if err != nil {
		return err
	}
	cold := time.Since(coldStart)
	// Cold start with a warm cache: load + bind, no lowering. Averaged
	// over many hits (a single hit is below timer resolution).
	const hits = 64
	warmStart := time.Now()
	for i := 0; i < hits; i++ {
		if _, _, err := plans.Compile(key, inference.CPUBackend{}, m.Graph); err != nil {
			return err
		}
	}
	warm := time.Since(warmStart) / hits
	if warm <= 0 {
		warm = time.Nanosecond
	}
	speedup := float64(cold) / float64(warm)

	// Parity: the cache-served plan is bitwise the in-process engine.
	got, err := coldExe.(*inference.Engine).RunSingle(in)
	if err != nil {
		return err
	}
	parity, _ := tensor.MaxAbsDiff(want, got)

	// Serve the artifact on a 2-replica CPU fleet through the registry:
	// one compile, one cache hit.
	reg := cluster.NewRegistry()
	if _, err := reg.LoadFile(path); err != nil {
		return err
	}
	chassis2 := microserver.NewURECS()
	for slot := 0; slot < 2; slot++ {
		mod, err := microserver.FindModule("SMARC ARM")
		if err != nil {
			return err
		}
		if err := chassis2.Insert(slot, mod); err != nil {
			return err
		}
	}
	sched := cluster.NewScheduler(chassis2, cluster.Config{Registry: reg})
	defer sched.Close()
	dep, err := sched.DeployArtifact(g.Name)
	if err != nil {
		return err
	}
	outs, err := dep.InferSingle(in)
	if err != nil {
		return err
	}
	fleetParity, _ := tensor.MaxAbsDiff(want, outs)
	ps := reg.Plans().Stats()

	r.linef("")
	r.linef("artifact deployment (%s, %d bytes, %s):", g.Name, len(data), m.Digest[:23])
	r.linef("load %v | plan cold-compile %v | plan cache-hit %v -> %.0fx faster replica cold-start",
		loadT.Round(time.Microsecond), cold.Round(time.Microsecond), warm, speedup)
	r.linef("2-replica CPU fleet from registry: %d plan compiled, %d cache hit", ps.Misses, ps.Hits)
	r.metric("artifact_bytes", "B", float64(len(data)))
	r.metric("plan_cache_cold_us", "us", float64(cold.Microseconds()))
	r.metric("plan_cache_hit_ns", "ns", float64(warm.Nanoseconds()))
	r.metric("plan_cache_speedup", "x", speedup)
	r.metric("plan_cache_fleet_compiles", "plans", float64(ps.Misses))
	r.check("artifact round-trip serves bitwise-identical outputs", parity == 0 && fleetParity == 0)
	r.check("plan-cache cold-start >=3x faster than recompiling", speedup >= 3)
	r.check("artifact fleet shares one compiled plan across CPU replicas", ps.Entries == 1 && ps.Hits >= 1)
	return nil
}

func allServed(replicas []cluster.ReplicaStats) bool {
	for _, rs := range replicas {
		if rs.Served < 1 {
			return false
		}
	}
	return true
}
