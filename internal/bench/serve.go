package bench

import (
	"context"
	"fmt"
	"time"

	"vedliot/internal/cluster"
	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/serve"
	"vedliot/internal/tensor"
)

// ServeStudy exercises the network front door at both of its scales:
//
//  1. Million-client closed loop — the discrete-event simulator drives
//     a self-throttling client population (exact virtual time, so the
//     result is machine-independent) against a 4-replica edge fleet,
//     comparing adaptive batching (rows coalesced per dispatch) with
//     batch-size-1 passthrough at the same offered load: throughput,
//     tail latency (p50/p99/p999), shed fraction and SLO-violation
//     rate.
//  2. Real sockets — a framed-TCP server over a uRECS fleet takes a
//     closed-loop load run (thousands of client goroutines over a
//     connection pool) with the socket-boundary adaptive batcher on
//     vs off, plus a bitwise parity probe against the in-process
//     reference engine.
//
// The simulated metrics (serve_p99_ms, serve_slo_violation_rate,
// serve_batch_coalescing) are deterministic and pinned by the perf
// gate; the socket run contributes ratio checks that survive machine
// differences.
func ServeStudy() (*Report, error) {
	r := newReport("Platform — network front door: adaptive batching at the socket boundary")

	// --- Part 1: closed-loop simulation at fleet scale ----------------
	// An edge replica: 1.5ms base service plus 150µs per extra row in a
	// batch, so coalescing amortizes the fixed per-dispatch cost. Four
	// replicas give 2.7k req/s unbatched and ~21k req/s at batch 32;
	// think time scales with the population so the offered load (~13k
	// req/s) sits between the two capacities at every fidelity.
	clients := pick(1_000_000, 50_000)
	fleet := make([]cluster.SimReplica, 4)
	for i := range fleet {
		fleet[i] = cluster.SimReplica{
			Name: fmt.Sprintf("edge%d", i), Service: 1500 * time.Microsecond,
			PerItem: 150 * time.Microsecond, IdleW: 5, MaxW: 25,
		}
	}
	base := cluster.ClosedLoopConfig{
		Clients:           clients,
		RequestsPerClient: 2,
		Think:             time.Duration(clients) * 77 * time.Microsecond,
		SLO:               50 * time.Millisecond,
		QueueCap:          512,
		Seed:              11,
	}
	batched, passthru := base, base
	batched.MaxBatch = 32
	passthru.MaxBatch = 1
	bres, err := cluster.SimulateClosedLoop(fleet, batched)
	if err != nil {
		return nil, err
	}
	pres, err := cluster.SimulateClosedLoop(fleet, passthru)
	if err != nil {
		return nil, err
	}
	simSpeedup := 0.0
	if pres.Throughput > 0 {
		simSpeedup = bres.Throughput / pres.Throughput
	}
	r.linef("closed-loop sim: %d clients x %d requests over %d replicas (queue %d, SLO %v)",
		clients, base.RequestsPerClient, len(fleet), base.QueueCap, base.SLO)
	r.linef("%-12s %12s %10s %10s %10s %10s %8s %10s", "policy", "throughput", "p50", "p99", "p999", "slo-rate", "shed", "rows/batch")
	for _, row := range []struct {
		name string
		res  cluster.ClosedLoopResult
	}{{"batch-1", pres}, {"adaptive-32", bres}} {
		r.linef("%-12s %9.0f/s %10v %10v %10v %9.4f %8d %10.1f", row.name, row.res.Throughput,
			row.res.Latency.P50.Round(time.Microsecond), row.res.Latency.P99.Round(time.Microsecond),
			row.res.Latency.P999.Round(time.Microsecond), row.res.SLOViolationRate, row.res.Shed, row.res.MeanBatch)
	}
	r.linef("sim throughput adaptive vs batch-1: %.2fx", simSpeedup)
	r.metric("serve_sim_clients", "", float64(clients))
	r.metric("serve_sim_throughput_rps", "req/s", bres.Throughput)
	r.metric("serve_sim_batch1_throughput_rps", "req/s", pres.Throughput)
	r.metric("serve_sim_speedup", "x", simSpeedup)
	r.metric("serve_p50_ms", "ms", float64(bres.Latency.P50)/1e6)
	r.metric("serve_p99_ms", "ms", float64(bres.Latency.P99)/1e6)
	r.metric("serve_p999_ms", "ms", float64(bres.Latency.P999)/1e6)
	r.metric("serve_slo_violation_rate", "", bres.SLOViolationRate)
	r.metric("serve_batch_coalescing", "rows/batch", bres.MeanBatch)
	r.check("sim: adaptive batching sustains >=2x batch-1 throughput", simSpeedup >= 2)
	r.check("sim: adaptive batching does not worsen the SLO-violation rate", bres.SLOViolationRate <= pres.SLOViolationRate)
	r.check("sim: dispatches coalesce >=4 rows per batch", bres.MeanBatch >= 4)
	r.check("sim: batch-1 passthrough sheds under the same load", pres.Shed > 0)

	// --- Part 2: real sockets over the uRECS fleet --------------------
	socketClients := pick(10000, 400)
	conns := pick(32, 8)
	// LeNet-300-100: dense layers whose batch-1 inference is
	// matrix-vector work while a coalesced batch runs as blocked GEMM,
	// so the engines only reach their throughput when the front door
	// hands them full batches — the workload the adaptive batcher is
	// for.
	g := nn.MLP("lenet-300-100", []int{784, 300, 100, 10}, nn.BuildOptions{Weights: true, Seed: 1})
	ins, err := nn.SyntheticInput(g, 1, 5)
	if err != nil {
		return nil, err
	}
	eng, err := inference.Compile(g)
	if err != nil {
		return nil, err
	}
	want, err := eng.Run(ins)
	if err != nil {
		return nil, err
	}

	run := func(policy serve.BatchPolicy) (serve.LoadResult, serve.ServerStats, float64, error) {
		chassis := microserver.NewURECS()
		for slot := 0; slot < 2; slot++ {
			m, err := microserver.FindModule("SMARC ARM")
			if err != nil {
				return serve.LoadResult{}, serve.ServerStats{}, 0, err
			}
			if err := chassis.Insert(slot, m); err != nil {
				return serve.LoadResult{}, serve.ServerStats{}, 0, err
			}
		}
		// The fleet servers run tickets exactly as handed (no backend
		// re-coalescing), so the comparison isolates the socket-boundary
		// batcher: engines see the batches the front door built.
		sched := cluster.NewScheduler(chassis, cluster.Config{
			QueueDepth: 512,
			Serve:      microserver.ServeConfig{MaxBatch: 1, QueueDepth: 64},
		})
		defer sched.Close()
		if _, err := sched.Deploy(g); err != nil {
			return serve.LoadResult{}, serve.ServerStats{}, 0, err
		}
		srv, err := serve.Listen("127.0.0.1:0", sched, serve.Config{Batch: policy})
		if err != nil {
			return serve.LoadResult{}, serve.ServerStats{}, 0, err
		}
		defer srv.Close()
		pool, err := serve.DialPool(srv.Addr(), "", conns)
		if err != nil {
			return serve.LoadResult{}, serve.ServerStats{}, 0, err
		}
		defer pool.Close()
		// Parity probe through the full framed path before the load.
		outs, err := pool.InferCtx(context.Background(), g.Name, ins)
		if err != nil {
			return serve.LoadResult{}, serve.ServerStats{}, 0, err
		}
		parity, _ := tensor.MaxAbsDiff(want[g.Outputs[0]], outs[g.Outputs[0]])
		res, err := serve.RunClosedLoop(pool, serve.LoadConfig{
			Model:             g.Name,
			Clients:           socketClients,
			RequestsPerClient: 2,
			Think:             25 * time.Millisecond,
			SLO:               time.Second,
			Retry:             true,
			Inputs:            func(int) map[string]*tensor.Tensor { return ins },
			Seed:              23,
		})
		return res, srv.Stats(), parity, err
	}

	pLoad, pStats, pParity, err := run(serve.BatchPolicy{MaxBatch: 1})
	if err != nil {
		return nil, err
	}
	bLoad, bStats, bParity, err := run(serve.BatchPolicy{MaxBatch: 64, MaxDelay: time.Millisecond})
	if err != nil {
		return nil, err
	}
	speedup := 0.0
	if pLoad.Throughput > 0 {
		speedup = bLoad.Throughput / pLoad.Throughput
	}
	shedFrac := 0.0
	if bLoad.Requests > 0 {
		shedFrac = float64(bLoad.Shed) / float64(bLoad.Requests)
	}
	r.linef("")
	r.linef("framed TCP: %d clients x 2 requests over %d pooled conns, 2x SMARC ARM fleet", socketClients, conns)
	r.linef("%-12s %12s %10s %10s %10s %8s %8s %10s", "policy", "throughput", "p50", "p99", "p999", "shed", "failed", "rows/batch")
	for _, row := range []struct {
		name  string
		load  serve.LoadResult
		stats serve.ServerStats
	}{{"batch-1", pLoad, pStats}, {"adaptive-64", bLoad, bStats}} {
		r.linef("%-12s %9.0f/s %10v %10v %10v %8d %8d %10.1f", row.name, row.load.Throughput,
			row.load.Latency.P50.Round(time.Microsecond), row.load.Latency.P99.Round(time.Microsecond),
			row.load.Latency.P999.Round(time.Microsecond), row.load.Shed, row.load.Failed, row.stats.MeanBatch)
	}
	r.linef("socket throughput adaptive vs batch-1: %.2fx", speedup)
	r.metric("serve_throughput_rps", "req/s", bLoad.Throughput)
	r.metric("serve_batch1_throughput_rps", "req/s", pLoad.Throughput)
	r.metric("serve_batch_speedup", "x", speedup)
	r.metric("serve_socket_p50_ms", "ms", float64(bLoad.Latency.P50)/1e6)
	r.metric("serve_socket_p99_ms", "ms", float64(bLoad.Latency.P99)/1e6)
	r.metric("serve_socket_p999_ms", "ms", float64(bLoad.Latency.P999)/1e6)
	r.metric("serve_socket_slo_violation_rate", "", bLoad.SLOViolationRate)
	r.metric("serve_socket_coalescing", "rows/batch", bStats.MeanBatch)
	r.metric("serve_shed_fraction", "", shedFrac)

	speedupFloor, coalesceFloor := 2.0, 4.0
	if Quick() {
		speedupFloor, coalesceFloor = 1.2, 1.5
	}
	r.check("socket: bitwise parity with the reference engine", pParity == 0 && bParity == 0)
	r.check("socket: zero hard failures under load", pLoad.Failed == 0 && bLoad.Failed == 0)
	r.check(fmt.Sprintf("socket: adaptive batching sustains >=%.1fx batch-1 throughput", speedupFloor), speedup >= speedupFloor)
	r.check(fmt.Sprintf("socket: dispatches coalesce >=%.1f rows per batch", coalesceFloor), bStats.MeanBatch >= coalesceFloor)
	return r, nil
}
