package bench

import (
	"fmt"
	"time"

	"vedliot/internal/accel"
	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// QuantizedStudy measures the native INT8 execution path end to end on
// a MobileNet-style workload: calibration produces the activation
// QuantSchema, the quantized plan runs the same network as the FP32
// engine (single core, the fair kernel-vs-kernel comparison), and the
// report tracks the speedup, the ~4x activation-arena reduction, top-1
// agreement with the FP32 reference, and the honest INT8 deployment of
// an EdgeTPU-class device model.
func QuantizedStudy() (*Report, error) {
	r := newReport("Toolchain — native INT8 engine vs FP32 engine")

	size := pick(64, 48)
	iters := pick(6, 2)
	g := nn.MobileNetEdge(size, 10, nn.BuildOptions{Weights: true, Seed: 3})
	if _, err := optimize.Pipeline(g, optimize.StandardPasses(), 0); err != nil {
		return nil, err
	}

	input := func(batch, seed int) map[string]*tensor.Tensor {
		in, err := nn.SyntheticInput(g, batch, seed)
		if err != nil {
			panic(err) // shapes already validated by the pipeline above
		}
		return in
	}

	// Calibration: a handful of batches through the FP32 engine derive
	// per-tensor activation ranges.
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		return nil, err
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		return nil, err
	}
	r.linef("model %s (%dx%d), calibrated %d values from %d batches",
		g.Name, size, size, len(schema.Activations), len(samples))

	fp, err := inference.Compile(g, inference.WithWorkers(1))
	if err != nil {
		return nil, err
	}
	q, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
	if err != nil {
		return nil, err
	}

	// Warm both engines' scratch pools before timing.
	warm := input(8, 9)
	if _, err := fp.Run(warm); err != nil {
		return nil, err
	}
	if _, err := q.Run(warm); err != nil {
		return nil, err
	}

	// Best-of-iters latency, engines interleaved so machine noise hits
	// both sides alike.
	timeBoth := func(in map[string]*tensor.Tensor) (time.Duration, time.Duration, error) {
		var bestF, bestQ time.Duration
		for i := 0; i < iters; i++ {
			start := time.Now()
			if _, err := fp.Run(in); err != nil {
				return 0, 0, err
			}
			df := time.Since(start)
			start = time.Now()
			if _, err := q.Run(in); err != nil {
				return 0, 0, err
			}
			dq := time.Since(start)
			if bestF == 0 || df < bestF {
				bestF = df
			}
			if bestQ == 0 || dq < bestQ {
				bestQ = dq
			}
		}
		return bestF, bestQ, nil
	}

	r.linef("%-24s %14s %14s %9s", "configuration (1 core)", "fp32 engine", "int8 engine", "speedup")
	var speedup8 float64
	for _, batch := range []int{1, 8} {
		tf, tq, err := timeBoth(input(batch, 9))
		if err != nil {
			return nil, err
		}
		sp := float64(tf) / float64(tq)
		if batch == 8 {
			speedup8 = sp
		}
		r.linef("batch %-18d %14v %14v %8.2fx", batch, tf, tq, sp)
		r.metric(fmt.Sprintf("quant_latency_batch%d", batch), "ns", float64(tq))
		r.metric(fmt.Sprintf("quant_speedup_batch%d", batch), "x", sp)
	}

	// Accuracy: top-1 agreement with the FP32 engine over fresh probes.
	// A decision counts as disagreement only when the FP32 reference
	// itself separates the two classes by more than 1% probability mass
	// (or two INT8 output steps, whichever is larger) — flips inside
	// that band are ties the reference cannot resolve either, the
	// "within tolerance" criterion of the pass-validation flow.
	outQ, _ := schema.Params(g.Outputs[0])
	tieTol := 2 * float64(outQ.Scale)
	if tieTol < 0.01 {
		tieTol = 0.01
	}
	agree, probes := 0, 0
	var worst float64
	for seed := 20; seed < 24; seed++ {
		in := input(8, seed)
		want, err := fp.Run(in)
		if err != nil {
			return nil, err
		}
		got, err := q.Run(in)
		if err != nil {
			return nil, err
		}
		for _, out := range g.Outputs {
			w, o := want[out], got[out]
			d, err := tensor.MaxAbsDiff(w, o)
			if err != nil {
				return nil, err
			}
			if d > worst {
				worst = d
			}
			n, f := w.Shape[0], w.Shape[1]
			for b := 0; b < n; b++ {
				wBest, oBest := 0, 0
				for i := 1; i < f; i++ {
					if w.F32[b*f+i] > w.F32[b*f+wBest] {
						wBest = i
					}
					if o.F32[b*f+i] > o.F32[b*f+oBest] {
						oBest = i
					}
				}
				probes++
				if wBest == oBest || float64(w.F32[b*f+wBest]-w.F32[b*f+oBest]) <= tieTol {
					agree++
				}
			}
		}
	}
	agreement := float64(agree) / float64(probes)
	r.linef("top-1 agreement %d/%d (tie tolerance %.4f), max |softmax diff| %.4f",
		agree, probes, tieTol, worst)
	r.metric("quant_top1_agreement", "frac", agreement)
	r.metric("quant_output_maxdiff", "abs", worst)

	// Memory: the int8 arena against the FP32 arena on the same
	// liveness plan.
	fpBytes := fp.ArenaFloatsPerSample() * 4
	qBytes := q.ArenaBytesPerSample()
	memRatio := float64(fpBytes) / float64(qBytes)
	r.linef("activation arena: %d B/sample fp32, %d B/sample int8 (%.2fx reduction)",
		fpBytes, qBytes, memRatio)
	r.metric("quant_activation_mem_ratio", "x", memRatio)
	r.linef("plan: %d calibrated values, %d FP32-fallback steps (softmax head)",
		len(schema.Activations), q.FallbackSteps())

	// Honest INT8-only accelerator deployment: the EdgeTPU-class device
	// model now executes functionally on the quantized engine, so its
	// roofline prediction is attached to genuinely quantized outputs.
	dev, err := accel.FindDevice("EdgeTPU SoM")
	if err != nil {
		return nil, err
	}
	prog, err := accel.NewQuantizedBackend(dev, schema).Compile(g)
	if err != nil {
		return nil, err
	}
	p := prog.(*accel.Program)
	m, err := p.Predict(8)
	if err != nil {
		return nil, err
	}
	r.linef("%s: native INT8 execution (quantized=%v), predicted %.2f ms @ batch 8, %.1f TOPS/W",
		dev.Name, p.Quantized(), m.LatencyMS, m.TOPSW())
	r.metric("edgetpu_predicted_ms_batch8", "ms", m.LatencyMS)

	// The speedup claim holds where the SIMD integer kernels exist
	// (amd64 baseline); on other GOARCHes the portable fallbacks are
	// correct but not faster than scalar float code, so only sanity is
	// asserted there — the memory and parity wins are architecture-
	// independent.
	//
	// The 1.1x bar is deliberate: both engines now run the same packed
	// GEMM micro-kernels, so the INT8 margin is PMADDWD's 2x MACs per
	// instruction minus quantize/requantize overhead — a structural
	// advantage, but a far smaller ratio than when the FP32 denominator
	// was a scalar loop. The dominant INT8 wins are the parity and the
	// 4x activation-memory cut asserted below.
	if tensor.FastInt8 {
		r.check("quantized engine faster than FP32 engine at batch 8", speedup8 >= 1.1)
	} else {
		r.linef("no SIMD integer kernels on this GOARCH: speedup check relaxed to sanity")
		r.check("quantized engine not pathologically slower at batch 8", speedup8 >= 0.4)
	}
	r.check("top-1 agreement with FP32 reference", agreement == 1)
	r.check("~4x activation-memory reduction (>= 3.5x)", memRatio >= 3.5)
	r.check("INT8-only device executes on the quantized engine", p.Quantized())
	return r, nil
}
