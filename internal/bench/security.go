package bench

import (
	"fmt"
	"net"
	"time"

	"vedliot/internal/attest"
	"vedliot/internal/cfu"
	"vedliot/internal/minisql"
	"vedliot/internal/riscv"
	"vedliot/internal/soc"
	"vedliot/internal/tee"
)

// twineWorkload runs the Twine KV workload (inserts then point lookups)
// against a minisql database through the full SQL path (parse + plan +
// execute, as SQLite would) and returns wall time plus accounted enclave
// overhead. When an enclave is supplied, each statement crosses the
// boundary once — Twine keeps the database engine resident inside the
// enclave, so the SQL statement is the transition granularity.
func twineWorkload(db *minisql.DB, enclave *tee.Enclave, n int) (time.Duration, time.Duration, error) {
	exec := func(sql string) (*minisql.Result, error) {
		if enclave == nil {
			return db.Exec(sql)
		}
		var res *minisql.Result
		err := enclave.Ecall(int64(len(sql)), func() error {
			var e error
			res, e = db.Exec(sql)
			return e
		})
		return res, err
	}
	if _, err := exec("CREATE TABLE kv (k INT PRIMARY KEY, v INT)"); err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for i := 1; i <= n; i++ {
		if _, err := exec(fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*3)); err != nil {
			return 0, 0, err
		}
	}
	for i := 1; i <= n; i++ {
		res, err := exec(fmt.Sprintf("SELECT v FROM kv WHERE k = %d", i))
		if err != nil {
			return 0, 0, err
		}
		if len(res.Rows) != 1 || res.Rows[0][0].I != int64(i*3) {
			return 0, 0, fmt.Errorf("twine: wrong lookup result for key %d", i)
		}
	}
	wall := time.Since(start)
	var overhead time.Duration
	if enclave != nil {
		overhead = time.Duration(enclave.OverheadNS())
	}
	return wall, overhead, nil
}

// Twine reproduces the §IV-C database-in-enclave study: the same SQL
// workload on (1) the native store, (2) the WASM-VM store, and (3) the
// WASM store with every VM entry charged SGX transition costs.
func Twine() (*Report, error) {
	r := newReport("§IV-C — minisql native vs WASM vs WASM+enclave (Twine)")
	const (
		n     = 4000
		tries = 3 // min-of-3 wall times, robust to scheduler noise
	)

	minWall := func(run func() (time.Duration, time.Duration, error)) (time.Duration, time.Duration, error) {
		best, bestOver := time.Duration(1<<62), time.Duration(0)
		for i := 0; i < tries; i++ {
			w, over, err := run()
			if err != nil {
				return 0, 0, err
			}
			if w < best {
				best, bestOver = w, over
			}
		}
		return best, bestOver, nil
	}

	// Native.
	nativeWall, _, err := minWall(func() (time.Duration, time.Duration, error) {
		return twineWorkload(minisql.NewDB(nil), nil, n)
	})
	if err != nil {
		return nil, err
	}

	// WASM.
	var wasmStore *minisql.WasmStore
	factory := func(table string, schema minisql.Schema) (minisql.RowStore, error) {
		s, err := minisql.NewWasmStore(schema)
		if err != nil {
			return nil, err
		}
		wasmStore = s
		return s, nil
	}
	wasmWall, _, err := minWall(func() (time.Duration, time.Duration, error) {
		return twineWorkload(minisql.NewDB(factory), nil, n)
	})
	if err != nil {
		return nil, err
	}
	wasmInstr := wasmStore.VM().Executed

	// WASM + enclave: the engine is resident in the enclave; each SQL
	// statement is one ecall. The transition overhead is accounted
	// deterministically, so only the wall component carries noise.
	enclave := tee.NewEnclave([]byte("minisql-wasm-v1"), tee.SGXCosts())
	encWall, _, err := minWall(func() (time.Duration, time.Duration, error) {
		return twineWorkload(minisql.NewDB(minisql.WasmFactory), enclave, n)
	})
	if err != nil {
		return nil, err
	}
	encOverhead := time.Duration(enclave.OverheadNS()) / tries
	encTotal := encWall + encOverhead

	r.linef("workload: %d inserts + %d indexed lookups", n, n)
	r.linef("%-22s %12s %14s", "runtime", "time", "vs native")
	r.linef("%-22s %12v %13.2fx", "native", nativeWall, 1.0)
	r.linef("%-22s %12v %13.2fx", "wasm", wasmWall, float64(wasmWall)/float64(nativeWall))
	r.linef("%-22s %12v %13.2fx", "wasm+sgx (accounted)", encTotal, float64(encTotal)/float64(nativeWall))
	r.linef("wasm interpreter executed %d instructions; enclave ecalls %d, overhead %v",
		wasmInstr, enclave.Ecalls(), encOverhead)

	// The SQL front end dominates both native and wasm runs, so their
	// wall times can sit within scheduler noise of each other; the
	// deterministic assertions are that the data plane really executed
	// in the VM and that the accounted enclave total tops the stack.
	r.check("wasm data plane really interpreted (>100k instructions)", wasmInstr > 100_000)
	r.check("wasm within noise of or slower than native", float64(wasmWall) > 0.7*float64(nativeWall))
	r.check("wasm+sgx is the slowest configuration", encTotal > wasmWall && encTotal > nativeWall)
	// Twine's claim: the *enclave* adds small overhead on top of WASM
	// (the interpretation itself dominates).
	sgxOnWasm := float64(encTotal) / float64(wasmWall)
	r.linef("enclave overhead on top of wasm: %.2fx", sgxOnWasm)
	// Twine reports ~1.5-2x typical, up to ~4x worst-case per query.
	r.check("enclave adds < 4x on top of wasm", sgxOnWasm < 4)
	return r, nil
}

// AblationEcallBatching shows why Twine-style runtimes batch enclave
// transitions: per-operation ecalls versus one ecall per 64 operations.
func AblationEcallBatching() (*Report, error) {
	r := newReport("Ablation — enclave transition batching")
	const ops = 10000
	perOp := tee.NewEnclave([]byte("x"), tee.SGXCosts())
	for i := 0; i < ops; i++ {
		_ = perOp.Ecall(16, func() error { return nil })
	}
	batched := tee.NewEnclave([]byte("x"), tee.SGXCosts())
	for i := 0; i < ops; i += 64 {
		_ = batched.Ecall(16*64, func() error { return nil })
	}
	r.linef("%d ops, per-op ecalls:   overhead %v", ops, time.Duration(perOp.OverheadNS()))
	r.linef("%d ops, 64-op batches:   overhead %v", ops, time.Duration(batched.OverheadNS()))
	r.linef("batching saves %.1fx", float64(perOp.OverheadNS())/float64(batched.OverheadNS()))
	r.check("batching reduces overhead >= 5x", perOp.OverheadNS() > 5*batched.OverheadNS())
	return r, nil
}

// PMPBench reproduces the VexRiscv PMP evaluation: functional isolation
// (from the riscv tests' semantics) plus the cycle cost of checks and
// violation traps measured on firmware.
func PMPBench() (*Report, error) {
	r := newReport("§IV-C — RISC-V PMP unit (VexRiscv contribution)")

	// Workload: U-mode loop writing a permitted window; measure cycles
	// with PMP off (M-mode, unconfigured) vs configured.
	run := func(configure bool) (uint64, uint64, error) {
		m, err := soc.NewMachine(soc.Config{Name: "pmp"})
		if err != nil {
			return 0, 0, err
		}
		p := &soc.Program{}
		if configure {
			// Entry 0: all RAM R+W+X for U-mode.
			p.EmitLI(riscv.T0, riscv.NAPOTAddr(soc.RAMBase, 1<<20))
			p.Emit(riscv.CSRRW(0, riscv.T0, riscv.CsrPmpaddr0))
			p.EmitLI(riscv.T0, uint32(riscv.PmpR|riscv.PmpW|riscv.PmpX|riscv.PmpNAPOT<<3))
			p.Emit(riscv.CSRRW(0, riscv.T0, riscv.CsrPmpcfg0))
		}
		// Loop: 1000 stores to a scratch word.
		p.EmitLI(riscv.A0, soc.RAMBase+0x8000)
		p.EmitLI(riscv.A1, 1000)
		p.EmitLI(riscv.A2, 0)
		loop := p.PC()
		p.Emit(
			riscv.SW(riscv.A2, riscv.A0, 0),
			riscv.ADDI(riscv.A2, riscv.A2, 1),
		)
		p.Emit(riscv.BLT(riscv.A2, riscv.A1, int32(loop-p.PC())))
		p.Emit(riscv.WFI())
		if err := m.LoadFirmware(p.Words()); err != nil {
			return 0, 0, err
		}
		if _, err := m.Run(200000); err != nil {
			return 0, 0, err
		}
		return m.Core.Cycles, m.Core.PMPUnit().Checks, nil
	}

	offCycles, _, err := run(false)
	if err != nil {
		return nil, err
	}
	onCycles, checks, err := run(true)
	if err != nil {
		return nil, err
	}
	r.linef("1000-store loop: %d cycles unconfigured, %d cycles with PMP (%d checks performed)",
		offCycles, onCycles, checks)
	overhead := float64(onCycles)/float64(offCycles) - 1
	r.linef("PMP cycle overhead: %.1f%% (hardware PMP checks in parallel; the model charges none)", overhead*100)
	r.check("PMP adds no per-access cycle penalty", onCycles <= offCycles+64)
	r.check("checks cover fetches and stores", checks > 2000)

	// Violation path: measure trap cost.
	m, err := soc.NewMachine(soc.Config{Name: "pmp-trap"})
	if err != nil {
		return nil, err
	}
	p := &soc.Program{}
	const handlerOff = 96
	p.EmitLI(riscv.T0, soc.RAMBase+handlerOff)
	p.Emit(riscv.CSRRW(0, riscv.T0, riscv.CsrMtvec))
	// U-mode may execute the first 4 KiB only (no data window).
	p.EmitLI(riscv.T0, riscv.NAPOTAddr(soc.RAMBase, 4096))
	p.Emit(riscv.CSRRW(0, riscv.T0, riscv.CsrPmpaddr0))
	p.EmitLI(riscv.T0, uint32(riscv.PmpR|riscv.PmpX|riscv.PmpNAPOT<<3))
	p.Emit(riscv.CSRRW(0, riscv.T0, riscv.CsrPmpcfg0))
	// Drop to U-mode at uCode.
	uCode := uint32(64)
	p.EmitLI(riscv.T0, soc.RAMBase+uCode)
	p.Emit(riscv.CSRRW(0, riscv.T0, riscv.CsrMepc))
	p.Emit(riscv.MRET())
	for p.PC() < soc.RAMBase+uCode {
		p.Emit(riscv.NOP())
	}
	// U-mode: attempt a store outside any window -> trap.
	p.EmitLI(riscv.A0, soc.RAMBase+0x10000)
	p.Emit(riscv.SW(riscv.A0, riscv.A0, 0))
	p.Emit(riscv.NOP())
	for p.PC() < soc.RAMBase+handlerOff {
		p.Emit(riscv.NOP())
	}
	p.Emit(riscv.CSRRS(riscv.S2, 0, riscv.CsrMcause))
	p.Emit(riscv.WFI())
	if err := m.LoadFirmware(p.Words()); err != nil {
		return nil, err
	}
	if _, err := m.Run(10000); err != nil {
		return nil, err
	}
	r.linef("U-mode violation trapped with mcause=%d (store access fault)", m.Core.X[riscv.S2])
	r.check("violation traps to M-mode with cause 7", m.Core.X[riscv.S2] == riscv.ExcStoreAccessFault)
	r.check("core back in machine mode", m.Core.Priv() == riscv.PrivM)
	return r, nil
}

// Attestation reproduces the end-to-end remote attestation flow over
// TCP and reports its latency budget.
func Attestation() (*Report, error) {
	r := newReport("§IV-C — end-to-end remote attestation")
	root, err := attest.NewRootOfTrust()
	if err != nil {
		return nil, err
	}
	boot := []attest.BootStage{
		{Name: "bootloader", Image: []byte("bl-1.2")},
		{Name: "op-tee", Image: []byte("optee-3.19")},
		{Name: "monitor", Image: []byte("robustness-monitor-2.0")},
	}
	dev, err := attest.NewDevice("edge-station-1", root, boot)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		r.linef("loopback networking unavailable (%v); verifying locally", err)
		v := attest.NewVerifier(root.Public(), dev.Measurement())
		nonce := []byte("local-nonce")
		if err := v.Verify(dev.Respond(nonce), nonce); err != nil {
			return nil, err
		}
		r.check("local attestation verifies", true)
		return r, nil
	}
	defer l.Close()
	go attest.Serve(l, dev)

	v := attest.NewVerifier(root.Public(), dev.Measurement())
	const rounds = 20
	var total time.Duration
	for i := 0; i < rounds; i++ {
		_, rtt, err := v.Attest(l.Addr().String(), 5*time.Second)
		if err != nil {
			return nil, err
		}
		total += rtt
	}
	mean := total / rounds
	r.linef("%d attestations over TCP, mean round trip %v", rounds, mean)
	r.check("attestation under 50 ms on loopback", mean < 50*time.Millisecond)

	// Tampered device must fail.
	dev2, err := attest.NewDevice("edge-station-2", root, boot)
	if err != nil {
		return nil, err
	}
	dev2.Tamper()
	nonce := []byte("n2")
	err = v.Verify(dev2.Respond(nonce), nonce)
	r.linef("tampered device verdict: %v", err)
	r.check("tampered device rejected", err != nil)
	return r, nil
}

// CFUBench reproduces the Renode CFU story: an INT8 dot-product kernel
// on the simulated core, scalar RV32IM versus the vector-MAC CFU.
func CFUBench() (*Report, error) {
	r := newReport("§II-B — CFU acceleration on the simulated SoC")
	const elems = 256 // 64 packed words

	buildData := func(m *soc.Machine) error {
		// Fill two arrays with bytes 1..4 repeating at 0x4000/0x5000.
		for i := 0; i < elems/4; i++ {
			if err := m.RAM.Write32(uint32(0x4000+i*4), 0x04030201); err != nil {
				return err
			}
			if err := m.RAM.Write32(uint32(0x5000+i*4), 0x02020202); err != nil {
				return err
			}
		}
		return nil
	}

	// Scalar version: unpack bytes with shifts, multiply-accumulate.
	scalar, err := soc.NewMachine(soc.Config{Name: "scalar"})
	if err != nil {
		return nil, err
	}
	if err := buildData(scalar); err != nil {
		return nil, err
	}
	p := &soc.Program{}
	p.EmitLI(riscv.A0, soc.RAMBase+0x4000) // a
	p.EmitLI(riscv.A1, soc.RAMBase+0x5000) // b
	p.EmitLI(riscv.A2, elems)              // count
	p.EmitLI(riscv.A3, 0)                  // acc
	loop := p.PC()
	p.Emit(
		riscv.LB(riscv.T0, riscv.A0, 0),
		riscv.LB(riscv.T1, riscv.A1, 0),
		riscv.MUL(riscv.T2, riscv.T0, riscv.T1),
		riscv.ADD(riscv.A3, riscv.A3, riscv.T2),
		riscv.ADDI(riscv.A0, riscv.A0, 1),
		riscv.ADDI(riscv.A1, riscv.A1, 1),
		riscv.ADDI(riscv.A2, riscv.A2, -1),
	)
	p.Emit(riscv.BNE(riscv.A2, riscv.Zero, int32(loop-p.PC())))
	p.Emit(riscv.WFI())
	if err := scalar.LoadFirmware(p.Words()); err != nil {
		return nil, err
	}
	if _, err := scalar.Run(1_000_000); err != nil {
		return nil, err
	}
	scalarResult := int32(scalar.Core.X[riscv.A3])
	scalarCycles := scalar.Core.Cycles

	// CFU version: 4 lanes per instruction.
	mac := &cfu.VectorMAC{}
	cfuM, err := soc.NewMachine(soc.Config{Name: "cfu", CFU: mac})
	if err != nil {
		return nil, err
	}
	if err := buildData(cfuM); err != nil {
		return nil, err
	}
	q := &soc.Program{}
	q.EmitLI(riscv.A0, soc.RAMBase+0x4000)
	q.EmitLI(riscv.A1, soc.RAMBase+0x5000)
	q.EmitLI(riscv.A2, elems/4)
	q.Emit(riscv.CUSTOM0(0, 0, 0, 0, 0)) // clear acc
	loop2 := q.PC()
	q.Emit(
		riscv.LW(riscv.T0, riscv.A0, 0),
		riscv.LW(riscv.T1, riscv.A1, 0),
		riscv.CUSTOM0(riscv.A4, riscv.T0, riscv.T1, 1, 0), // mac step
		riscv.ADDI(riscv.A0, riscv.A0, 4),
		riscv.ADDI(riscv.A1, riscv.A1, 4),
		riscv.ADDI(riscv.A2, riscv.A2, -1),
	)
	q.Emit(riscv.BNE(riscv.A2, riscv.Zero, int32(loop2-q.PC())))
	q.Emit(riscv.WFI())
	if err := cfuM.LoadFirmware(q.Words()); err != nil {
		return nil, err
	}
	if _, err := cfuM.Run(1_000_000); err != nil {
		return nil, err
	}
	cfuResult := int32(cfuM.Core.X[riscv.A4])
	cfuCycles := cfuM.Core.Cycles

	speedup := float64(scalarCycles) / float64(cfuCycles)
	r.linef("%d-element INT8 dot product", elems)
	r.linef("scalar RV32IM: result %d, %d cycles", scalarResult, scalarCycles)
	r.linef("vector-MAC CFU: result %d, %d cycles", cfuResult, cfuCycles)
	r.linef("speedup: %.1fx", speedup)
	r.check("results agree", scalarResult == cfuResult)
	r.check("CFU speedup >= 2x", speedup >= 2)
	return r, nil
}
