package bench

import (
	"fmt"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// EngineStudy compares the legacy tree-walking interpreter with the
// compiled execution-plan engine on a smart-mirror-class convolutional
// workload: single-inference latency, batch scaling, fused RunBatch
// dispatch and the memory planner's arena footprint. This is the
// harness's view of the toolchain refactor: same network, same
// arithmetic (outputs are compared), different execution strategy.
func EngineStudy() (*Report, error) {
	r := newReport("Toolchain — compiled engine vs reference interpreter")

	size := pick(64, 32)
	iters := pick(3, 1)
	g := nn.FaceDetectNet(size, nn.BuildOptions{Weights: true, Seed: 91})
	interp, err := inference.NewInterpreter(g)
	if err != nil {
		return nil, err
	}
	// Lowering trace: the shared pass pipeline both compilers drive.
	// Pass timings make compile-time regressions visible in the same
	// artifact that gates run-time.
	module, records, err := inference.Lower(g, nil, false)
	if err != nil {
		return nil, err
	}
	var lowerTotal time.Duration
	opsBefore, opsAfter := 0, 0
	for _, rec := range records {
		lowerTotal += rec.Duration
		if opsBefore == 0 {
			opsBefore = rec.OpsBefore
		}
		opsAfter = rec.OpsAfter
	}
	eliminated := opsBefore - opsAfter
	fusedChains := 0
	for _, op := range module.Ops {
		if len(op.Fused) > 0 {
			fusedChains++
		}
	}
	eng, err := inference.Compile(g)
	if err != nil {
		return nil, err
	}

	input := func(batch int) *tensor.Tensor {
		in := tensor.New(tensor.FP32, batch, 1, size, size)
		for i := range in.F32 {
			in.F32[i] = float32(i%13)/13 - 0.5
		}
		return in
	}

	// Functional parity on a batch-8 input.
	in8 := input(8)
	want, err := interp.RunSingle(in8)
	if err != nil {
		return nil, err
	}
	got, err := eng.RunSingle(in8)
	if err != nil {
		return nil, err
	}
	parity, err := tensor.MaxAbsDiff(want, got)
	if err != nil {
		return nil, err
	}

	// timeIt returns the best-of-iters latency of one call.
	timeIt := func(f func() error) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	r.linef("%-28s %14s %14s %9s", "configuration", "interpreter", "engine", "speedup")
	var speedup8 float64
	for _, batch := range []int{1, 8, 32} {
		in := input(batch)
		ti, err := timeIt(func() error { _, err := interp.RunSingle(in); return err })
		if err != nil {
			return nil, err
		}
		te, err := timeIt(func() error { _, err := eng.RunSingle(in); return err })
		if err != nil {
			return nil, err
		}
		sp := float64(ti) / float64(te)
		if batch == 8 {
			speedup8 = sp
		}
		r.linef("batch %-22d %14v %14v %8.2fx", batch, ti, te, sp)
		r.metric(fmt.Sprintf("engine_latency_batch%d", batch), "ns", float64(te))
		r.metric(fmt.Sprintf("engine_speedup_batch%d", batch), "x", sp)
	}

	// Fused dispatch: 8 independent single-sample requests.
	reqs := make([]map[string]*tensor.Tensor, 8)
	for i := range reqs {
		reqs[i] = map[string]*tensor.Tensor{g.Inputs[0]: input(1)}
	}
	tSeq, err := timeIt(func() error {
		for _, req := range reqs {
			if _, err := eng.Run(req); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tFused, err := timeIt(func() error { _, err := eng.RunBatch(reqs); return err })
	if err != nil {
		return nil, err
	}
	r.linef("8x1 requests: sequential %v, fused RunBatch %v (%.2fx)",
		tSeq, tFused, float64(tSeq)/float64(tFused))
	r.metric("fused_dispatch_speedup", "x", float64(tSeq)/float64(tFused))

	r.linef("memory plan: %d arena slots, %d floats/sample (vs %d unplanned)",
		eng.NumSlots(), eng.ArenaFloatsPerSample(), unplannedFloats(g))
	r.metric("arena_floats_per_sample", "f32", float64(eng.ArenaFloatsPerSample()))
	r.linef("lowering: %d -> %d ops (%d eliminated, %d fused chains) in %v across %d passes",
		opsBefore, opsAfter, eliminated, fusedChains, lowerTotal, len(records))
	for _, rec := range records {
		if rec.Changed {
			r.linef("  pass %-18s %3d -> %3d ops  %v", rec.Pass, rec.OpsBefore, rec.OpsAfter, rec.Duration)
		}
	}
	r.metric("lowering_ops_eliminated", "ops", float64(eliminated))
	r.metric("lowering_fused_chains", "ops", float64(fusedChains))
	r.metric("lowering_time_us", "us", float64(lowerTotal.Microseconds()))
	r.linef("output parity |engine - interpreter|: %g", parity)

	r.check("engine output matches interpreter (<= 1e-5)", parity <= 1e-5)
	// Timing checks stay lenient: CI machines are noisy. The benchmark
	// suite at the repository root tracks the real speedup trajectory.
	r.check("engine not slower than interpreter at batch 8", speedup8 >= 0.9)
	r.check("planner reuses activation memory", eng.ArenaFloatsPerSample() < unplannedFloats(g))
	r.check("lowering fuses the conv epilogues", fusedChains >= 4 && eliminated >= 8)
	return r, nil
}

// unplannedFloats sums all intermediate activation sizes for batch 1 —
// what a naive per-node allocator would hold live.
func unplannedFloats(g *nn.Graph) int {
	if err := g.InferShapes(1); err != nil {
		return 0
	}
	total := 0
	isIO := make(map[string]bool)
	for _, name := range g.Inputs {
		isIO[name] = true
	}
	for _, name := range g.Outputs {
		isIO[name] = true
	}
	for _, n := range g.Nodes {
		if isIO[n.Name] {
			continue
		}
		total += n.OutShape.NumElements()
	}
	return total
}
