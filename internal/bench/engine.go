package bench

import (
	"fmt"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
	"vedliot/internal/zoo"
)

// EngineStudy compares the legacy tree-walking interpreter with the
// compiled execution-plan engine on a smart-mirror-class convolutional
// workload: single-inference latency, batch scaling, fused RunBatch
// dispatch and the memory planner's arena footprint. This is the
// harness's view of the toolchain refactor: same network, same
// arithmetic (outputs are compared), different execution strategy.
func EngineStudy() (*Report, error) {
	r := newReport("Toolchain — compiled engine vs reference interpreter")

	size := pick(64, 32)
	iters := pick(3, 1)
	g := nn.FaceDetectNet(size, nn.BuildOptions{Weights: true, Seed: 91})
	interp, err := inference.NewInterpreter(g)
	if err != nil {
		return nil, err
	}
	// Lowering trace: the shared pass pipeline both compilers drive.
	// Pass timings make compile-time regressions visible in the same
	// artifact that gates run-time.
	module, records, err := inference.Lower(g, nil, false)
	if err != nil {
		return nil, err
	}
	var lowerTotal time.Duration
	opsBefore, opsAfter := 0, 0
	for _, rec := range records {
		lowerTotal += rec.Duration
		if opsBefore == 0 {
			opsBefore = rec.OpsBefore
		}
		opsAfter = rec.OpsAfter
	}
	eliminated := opsBefore - opsAfter
	fusedChains := 0
	for _, op := range module.Ops {
		if len(op.Fused) > 0 {
			fusedChains++
		}
	}
	eng, err := inference.Compile(g)
	if err != nil {
		return nil, err
	}

	input := func(batch int) *tensor.Tensor {
		in := tensor.New(tensor.FP32, batch, 1, size, size)
		for i := range in.F32 {
			in.F32[i] = float32(i%13)/13 - 0.5
		}
		return in
	}

	// Functional parity on a batch-8 input.
	in8 := input(8)
	want, err := interp.RunSingle(in8)
	if err != nil {
		return nil, err
	}
	got, err := eng.RunSingle(in8)
	if err != nil {
		return nil, err
	}
	parity, err := tensor.MaxAbsDiff(want, got)
	if err != nil {
		return nil, err
	}

	// timeIt returns the best-of-iters latency of one call.
	timeIt := func(f func() error) (time.Duration, error) {
		best := time.Duration(0)
		for i := 0; i < iters; i++ {
			start := time.Now()
			if err := f(); err != nil {
				return 0, err
			}
			d := time.Since(start)
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	r.linef("%-28s %14s %14s %9s", "configuration", "interpreter", "engine", "speedup")
	var speedup8 float64
	for _, batch := range []int{1, 8, 32} {
		in := input(batch)
		ti, err := timeIt(func() error { _, err := interp.RunSingle(in); return err })
		if err != nil {
			return nil, err
		}
		te, err := timeIt(func() error { _, err := eng.RunSingle(in); return err })
		if err != nil {
			return nil, err
		}
		sp := float64(ti) / float64(te)
		if batch == 8 {
			speedup8 = sp
		}
		r.linef("batch %-22d %14v %14v %8.2fx", batch, ti, te, sp)
		r.metric(fmt.Sprintf("engine_latency_batch%d", batch), "ns", float64(te))
		r.metric(fmt.Sprintf("engine_speedup_batch%d", batch), "x", sp)
	}

	// Fused dispatch: 8 independent single-sample requests.
	reqs := make([]map[string]*tensor.Tensor, 8)
	for i := range reqs {
		reqs[i] = map[string]*tensor.Tensor{g.Inputs[0]: input(1)}
	}
	tSeq, err := timeIt(func() error {
		for _, req := range reqs {
			if _, err := eng.Run(req); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	tFused, err := timeIt(func() error { _, err := eng.RunBatch(reqs); return err })
	if err != nil {
		return nil, err
	}
	r.linef("8x1 requests: sequential %v, fused RunBatch %v (%.2fx)",
		tSeq, tFused, float64(tSeq)/float64(tFused))
	r.metric("fused_dispatch_speedup", "x", float64(tSeq)/float64(tFused))

	r.linef("memory plan: %d arena slots, %d floats/sample (vs %d unplanned)",
		eng.NumSlots(), eng.ArenaFloatsPerSample(), unplannedFloats(g))
	r.metric("arena_floats_per_sample", "f32", float64(eng.ArenaFloatsPerSample()))
	r.linef("lowering: %d -> %d ops (%d eliminated, %d fused chains) in %v across %d passes",
		opsBefore, opsAfter, eliminated, fusedChains, lowerTotal, len(records))
	for _, rec := range records {
		if rec.Changed {
			r.linef("  pass %-18s %3d -> %3d ops  %v", rec.Pass, rec.OpsBefore, rec.OpsAfter, rec.Duration)
		}
	}
	r.metric("lowering_ops_eliminated", "ops", float64(eliminated))
	r.metric("lowering_fused_chains", "ops", float64(fusedChains))
	r.metric("lowering_time_us", "us", float64(lowerTotal.Microseconds()))

	kern := tensor.PickGemmF32()
	peakGF, convGF := gemmRoofline(kern, iters)
	attain := convGF / peakGF
	r.linef("gemm micro-kernel: %dx%d fp32 (tier %s) — hot tile %.2f GFLOP/s, conv-shaped %.2f GFLOP/s (%.0f%% attainment)",
		kern.MR, kern.NR, kern.Tier, peakGF, convGF, attain*100)
	r.metric("gemm_kernel_peak_gflops", "gflops", peakGF)
	r.metric("gemm_roofline_attainment", "ratio", attain)
	// Per-tier attainment: every variant this binary carries, measured on
	// the same hot-tile/conv-shape pair, so a tier regression (e.g. an
	// AVX-512 kernel losing to AVX2 on this host) shows up in the
	// artifact even when the runtime pick masks it.
	for _, v := range tensor.GemmF32Variants() {
		vp, vc := gemmRoofline(v, iters)
		va := vc / vp
		r.linef("  tier %-8s %dx%-3d hot %7.2f GFLOP/s, conv %7.2f GFLOP/s (%.0f%% attainment)",
			v.Tier, v.MR, v.NR, vp, vc, va*100)
		r.metric(fmt.Sprintf("gemm_roofline_attainment_%s", v.Tier), "ratio", va)
	}
	fp16Ratio, fp16Latency8, err := fp16TrafficStudy(iters)
	if err != nil {
		return nil, err
	}
	r.linef("fp16-compute: modeled memory traffic fp32/fp16 = %.2fx, batch-8 latency %v (informational)",
		fp16Ratio, fp16Latency8)
	r.metric("fp16_mem_traffic_ratio", "x", fp16Ratio)
	r.linef("output parity |engine - interpreter|: %g", parity)

	r.check("engine output matches interpreter (<= 1e-5)", parity <= 1e-5)
	// Timing checks stay lenient: CI machines are noisy. The benchmark
	// suite at the repository root tracks the real speedup trajectory.
	r.check("engine not slower than interpreter at batch 8", speedup8 >= 0.9)
	r.check("planner reuses activation memory", eng.ArenaFloatsPerSample() < unplannedFloats(g))
	r.check("lowering fuses the conv epilogues", fusedChains >= 4 && eliminated >= 8)
	r.check("packed gemm attains >= 25% of hot-tile peak", attain >= 0.25)
	r.check("fp16-compute halves modeled memory traffic (>= 1.5x)", fp16Ratio >= 1.5)
	return r, nil
}

// fp16TrafficStudy compiles the FP16-weight face detector twice — plain
// FP32 plan and PrecisionFP16Compute plan — and reports the modeled
// memory-traffic ratio between them (resident weight bytes plus
// per-step activation bytes at stored width). Weights and interior
// activations both halve under FP16-compute while the FP32 caller
// boundary does not, so the ratio lands between 1.5x and the 2x
// physical bound. The batch-8 latency of the FP16 engine rides along
// as an informational number; on a bandwidth-rich host the win is
// footprint, not speed.
func fp16TrafficStudy(iters int) (ratio float64, latency8 time.Duration, err error) {
	g := zoo.WeightsToFP16(nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 91}))
	ref, err := inference.Compile(g)
	if err != nil {
		return 0, 0, err
	}
	f16, err := inference.Compile(g, inference.PrecisionFP16Compute())
	if err != nil {
		return 0, 0, err
	}
	ratio = float64(ref.ModeledTrafficBytesPerSample()) / float64(f16.ModeledTrafficBytesPerSample())
	in := tensor.New(tensor.FP32, 8, 1, 32, 32)
	for i := range in.F32 {
		in.F32[i] = float32(i%13)/13 - 0.5
	}
	req := map[string]*tensor.Tensor{g.Inputs[0]: in}
	for it := 0; it <= iters; it++ { // iteration 0 is warm-up
		start := time.Now()
		if _, err := f16.Run(req); err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); it > 0 && (latency8 == 0 || d < latency8) {
			latency8 = d
		}
	}
	return ratio, latency8, nil
}

// gemmRoofline times the selected FP32 micro-kernel at two operating
// points: a hot MRxNR tile whose packed operands stay cache-resident
// (the practical peak of the register-blocked inner loop) and a
// convolution-shaped full GEMM through the packed Compute path. The
// ratio of the two rates — roofline attainment — measures how much of
// the inner loop's peak survives B packing, partial tiles and memory
// traffic at a real layer shape, which is the number the micro-kernel
// refactor is supposed to move.
func gemmRoofline(kern tensor.GemmKernelF32, iters int) (peakGF, convGF float64) {
	mr, nr := kern.MR, kern.NR
	const kHot = 256
	apanel := make([]float32, kern.PackedASize(mr, kHot))
	bpack := make([]float32, kHot*nr)
	bias := make([]float32, mr)
	ctile := make([]float32, mr*nr)
	for i := range apanel {
		apanel[i] = float32(i%7)*0.25 - 0.5
	}
	for i := range bpack {
		bpack[i] = float32(i%5)*0.5 - 1
	}
	const hotCalls = 512
	var bestHot time.Duration
	for it := 0; it <= iters; it++ { // iteration 0 is warm-up
		start := time.Now()
		for c := 0; c < hotCalls; c++ {
			kern.Run(apanel, bpack, nr, kHot, bias, ctile, nr)
		}
		if d := time.Since(start); it > 0 && (bestHot == 0 || d < bestHot) {
			bestHot = d
		}
	}
	peakGF = 2 * float64(mr) * float64(nr) * kHot * hotCalls / bestHot.Seconds() / 1e9

	// Conv-shaped problem: 128 output channels over 32x32 pixels with
	// 32-channel 3x3 taps — the mid-network GEMM both engines lower to.
	m, n, k := 128, 32*32, 32*9
	a := make([]float32, m*k)
	for i := range a {
		a[i] = float32(i%11)*0.1 - 0.5
	}
	apack := make([]float32, kern.PackedASize(m, k))
	kern.PackA(apack, a, k, m, k)
	bfull := make([]float32, k*n)
	for i := range bfull {
		bfull[i] = float32(i%13)*0.1 - 0.6
	}
	biasFull := kern.PackBias(make([]float32, m), m)
	cfull := make([]float32, m*n)
	bscratch := make([]float32, k*nr)
	var bestConv time.Duration
	for it := 0; it <= iters; it++ {
		start := time.Now()
		kern.Compute(m, n, k, apack, biasFull, bfull, n, cfull, n, bscratch, ctile)
		if d := time.Since(start); it > 0 && (bestConv == 0 || d < bestConv) {
			bestConv = d
		}
	}
	convGF = 2 * float64(m) * float64(n) * float64(k) / bestConv.Seconds() / 1e9
	return peakGF, convGF
}

// unplannedFloats sums all intermediate activation sizes for batch 1 —
// what a naive per-node allocator would hold live.
func unplannedFloats(g *nn.Graph) int {
	if err := g.InferShapes(1); err != nil {
		return 0
	}
	total := 0
	isIO := make(map[string]bool)
	for _, name := range g.Inputs {
		isIO[name] = true
	}
	for _, name := range g.Outputs {
		isIO[name] = true
	}
	for _, n := range g.Nodes {
		if isIO[n.Name] {
			continue
		}
		total += n.OutShape.NumElements()
	}
	return total
}
