package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The perf-regression gate: a committed baseline (bench_baseline.json
// at the repository root) names the metrics the CI bench-gate job
// enforces, and Check compares a run's BENCH_<id>.json artifacts
// against it. Baselines gate ratios and deterministic plan properties
// rather than absolute wall times, so the gate survives machine
// differences between laptops and CI runners while still catching real
// regressions in the engine and the serving stack.

// Baseline is the committed perf floor.
type Baseline struct {
	// Tolerance is the default allowed relative regression (0.15 means
	// a metric may be up to 15% worse than its baseline value).
	Tolerance float64 `json:"tolerance"`
	// Experiments maps experiment id to its gated metrics by name.
	Experiments map[string]map[string]GateMetric `json:"experiments"`
}

// GateMetric is one gated measurement.
type GateMetric struct {
	// Value is the committed baseline value.
	Value float64 `json:"value"`
	// Direction is "higher" (default: regression when the current value
	// falls below value*(1-tol)) or "lower" (regression when it rises
	// above value*(1+tol)).
	Direction string `json:"direction,omitempty"`
	// Tolerance overrides the baseline default for this metric.
	Tolerance *float64 `json:"tolerance,omitempty"`
}

// GateResult is the verdict for one gated metric.
type GateResult struct {
	Experiment string
	Metric     string
	Baseline   float64
	Current    float64
	Limit      float64
	Direction  string
	// Missing reports that the artifact or metric was absent — a gate
	// failure, since silently dropped experiments must not pass.
	Missing bool
	// FailedChecks lists the artifact's own failed shape checks.
	FailedChecks []string
	Regressed    bool
}

// Ok reports whether the metric passed the gate.
func (r GateResult) Ok() bool { return !r.Regressed && !r.Missing && len(r.FailedChecks) == 0 }

// String renders one result row.
func (r GateResult) String() string {
	status := "ok"
	switch {
	case r.Missing:
		status = "MISSING"
	case r.Regressed:
		status = "REGRESSED"
	case len(r.FailedChecks) > 0:
		status = "CHECKS FAILED: " + strings.Join(r.FailedChecks, ", ")
	}
	return fmt.Sprintf("%-10s %-28s baseline %10.3f  current %10.3f  limit %10.3f (%s)  %s",
		r.Experiment, r.Metric, r.Baseline, r.Current, r.Limit, r.Direction, status)
}

// LoadBaseline reads a committed baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: load baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("bench: parse baseline %s: %w", path, err)
	}
	if b.Tolerance <= 0 {
		b.Tolerance = 0.15
	}
	return &b, nil
}

// LoadArtifacts reads every BENCH_<id>.json perf artifact in dir,
// keyed by experiment id.
func LoadArtifacts(dir string) (map[string]Artifact, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	arts := make(map[string]Artifact, len(paths))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, err
		}
		var a Artifact
		if err := json.Unmarshal(data, &a); err != nil {
			return nil, fmt.Errorf("bench: parse artifact %s: %w", p, err)
		}
		if a.ID == "" {
			a.ID = strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "BENCH_"), ".json")
		}
		arts[a.ID] = a
	}
	return arts, nil
}

// Check evaluates every gated metric against the run's artifacts,
// sorted by experiment then metric name. Each gated experiment also
// re-asserts the artifact's own shape checks, so a run that wrote a
// failing artifact cannot slip through on metrics alone.
func (b *Baseline) Check(artifacts map[string]Artifact) []GateResult {
	var results []GateResult
	expIDs := make([]string, 0, len(b.Experiments))
	for id := range b.Experiments {
		expIDs = append(expIDs, id)
	}
	sort.Strings(expIDs)
	for _, id := range expIDs {
		gates := b.Experiments[id]
		art, haveArt := artifacts[id]
		var failed []string
		if haveArt {
			for name, ok := range art.Checks {
				if !ok {
					failed = append(failed, name)
				}
			}
			sort.Strings(failed)
		}
		names := make([]string, 0, len(gates))
		for name := range gates {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			gm := gates[name]
			tol := b.Tolerance
			if gm.Tolerance != nil {
				tol = *gm.Tolerance
			}
			dir := gm.Direction
			if dir == "" {
				dir = "higher"
			}
			res := GateResult{
				Experiment:   id,
				Metric:       name,
				Baseline:     gm.Value,
				Direction:    dir,
				FailedChecks: failed,
			}
			if !haveArt {
				res.Missing = true
				results = append(results, res)
				continue
			}
			cur, found := findMetric(art, name)
			if !found {
				res.Missing = true
				results = append(results, res)
				continue
			}
			res.Current = cur
			if dir == "lower" {
				res.Limit = gm.Value * (1 + tol)
				res.Regressed = cur > res.Limit
			} else {
				res.Limit = gm.Value * (1 - tol)
				res.Regressed = cur < res.Limit
			}
			results = append(results, res)
		}
	}
	return results
}

func findMetric(a Artifact, name string) (float64, bool) {
	for _, m := range a.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}
