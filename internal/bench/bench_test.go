package bench

import (
	"strings"
	"testing"
)

// TestAllExperimentsPassChecks runs every registered experiment and
// requires every embedded shape assertion to hold — the "paper shape
// reproduced" integration test. Under -short the training-bound
// experiments run at reduced iteration counts (see fidelity.go); every
// experiment and every check still executes.
func TestAllExperimentsPassChecks(t *testing.T) {
	if testing.Short() {
		SetQuick(true)
		defer SetQuick(false)
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if failed := rep.Failed(); len(failed) > 0 {
				t.Errorf("%s: failed checks: %v\n%s", e.ID, failed, rep)
			}
			if len(rep.Lines) == 0 {
				t.Errorf("%s: empty report", e.ID)
			}
		})
	}
}

func TestRegistryUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Paper == "" || e.Run == nil {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("fig3"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("found nonexistent experiment")
	}
}

func TestReportRendering(t *testing.T) {
	r := newReport("title")
	r.linef("row %d", 1)
	r.check("good", true)
	r.check("bad", false)
	s := r.String()
	for _, want := range []string{"== title ==", "row 1", "[PASS] good", "[FAIL] bad"} {
		if !strings.Contains(s, want) {
			t.Errorf("render missing %q:\n%s", want, s)
		}
	}
	if f := r.Failed(); len(f) != 1 || f[0] != "bad" {
		t.Errorf("Failed() = %v", f)
	}
}
