// Package bench implements the experiment harness: one entry per table
// and figure of the paper's evaluation (plus the quantitative claims
// made in prose), each regenerating the corresponding rows/series from
// this reproduction's models and simulators. cmd/vedliot-bench drives
// the registry from the command line; the repository-root benchmarks
// wrap the same entries in testing.B.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"vedliot/internal/tensor/cpu"
)

// Experiment is one registered paper artifact.
type Experiment struct {
	// ID is the short name used by -run (e.g. "fig3").
	ID string
	// Paper names the artifact being reproduced.
	Paper string
	// Run executes the experiment and returns the report.
	Run func() (*Report, error)
}

// Report is a rendered experiment result.
type Report struct {
	Title string
	// Lines is the human-readable table, ready to print.
	Lines []string
	// Checks are machine-checkable shape assertions (name -> pass).
	Checks map[string]bool
	// Metrics are the experiment's machine-readable measurements, in
	// recording order — the payload of the perf artifacts written by
	// `vedliot-bench -json`.
	Metrics []Metric
}

// Metric is one named measurement of an experiment run.
type Metric struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit,omitempty"`
	Value float64 `json:"value"`
}

func newReport(title string) *Report {
	return &Report{Title: title, Checks: make(map[string]bool)}
}

func (r *Report) linef(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// check records a shape assertion.
func (r *Report) check(name string, ok bool) {
	r.Checks[name] = ok
}

// metric records one machine-readable measurement.
func (r *Report) metric(name, unit string, value float64) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Unit: unit, Value: value})
}

// Artifact is the JSON perf record of one experiment run, the unit of
// the bench trajectory (`vedliot-bench -json` writes one
// BENCH_<id>.json per experiment).
type Artifact struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Checks map[string]bool `json:"checks"`
	// Kernel records the micro-kernel tier and CPU capability set of
	// the producing host (cpu.Summary), so a perf number can always be
	// traced back to the code path that generated it.
	Kernel  string   `json:"kernel,omitempty"`
	Metrics []Metric `json:"metrics,omitempty"`
}

// Artifact packages the report for machine consumption.
func (r *Report) Artifact(id string) Artifact {
	return Artifact{ID: id, Title: r.Title, Checks: r.Checks, Kernel: cpu.Summary(), Metrics: r.Metrics}
}

// Failed returns the names of failed checks, sorted.
func (r *Report) Failed() []string {
	var out []string
	for name, ok := range r.Checks {
		if !ok {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	if len(r.Checks) > 0 {
		names := make([]string, 0, len(r.Checks))
		for n := range r.Checks {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			status := "PASS"
			if !r.Checks[n] {
				status = "FAIL"
			}
			fmt.Fprintf(&b, "[%s] %s\n", status, n)
		}
	}
	return b.String()
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig2", Paper: "Fig. 2: COM form factors", Run: Fig2},
		{ID: "fig3", Paper: "Fig. 3: peak performance of DL accelerators", Run: Fig3},
		{ID: "topsw", Paper: "§II-C: ~1 TOPS/W efficiency cluster", Run: TOPSW},
		{ID: "fig4", Paper: "Fig. 4: YoloV4 performance evaluation", Run: Fig4YoloV4},
		{ID: "fig4r", Paper: "§II-C: ResNet50 / MobileNetV3 evaluation", Run: Fig4Companions},
		{ID: "urecs", Paper: "§II-A: uRECS < 15 W envelope", Run: URECS},
		{ID: "recon", Paper: "§II-A: run-time reconfiguration", Run: Reconfiguration},
		{ID: "comp49", Paper: "§III: up to 49x compression [7]", Run: DeepCompression49},
		{ID: "theory", Paper: "§III: theoretical vs hardware speed-ups [8]", Run: TheoryVsHardware},
		{ID: "kenning", Paper: "§III: Kenning measurement reports [10]", Run: KenningPipeline},
		{ID: "engine", Paper: "toolchain: compiled engine vs interpreter", Run: EngineStudy},
		{ID: "quantized", Paper: "toolchain: native INT8 engine vs FP32 engine", Run: QuantizedStudy},
		{ID: "cluster", Paper: "platform: heterogeneous fleet serving", Run: ClusterStudy},
		{ID: "serve", Paper: "platform: network front door, adaptive batching", Run: ServeStudy},
		{ID: "twine", Paper: "§IV-C: SQLite in SGX via WASM [17]", Run: Twine},
		{ID: "pmp", Paper: "§IV-C: VexRiscv PMP unit", Run: PMPBench},
		{ID: "cfu", Paper: "§II-B: Renode CFU simulation", Run: CFUBench},
		{ID: "attest", Paper: "§IV-C: end-to-end remote attestation", Run: Attestation},
		{ID: "safety", Paper: "§IV-B: input/output monitors", Run: SafetyMonitors},
		{ID: "paeb", Paper: "§V-A: PAEB offload study", Run: PAEB},
		{ID: "motor", Paper: "§V-B: motor condition classification", Run: MotorCondition},
		{ID: "arc", Paper: "§V-B: arc detection", Run: ArcDetection},
		{ID: "mirror", Paper: "§V-C / Fig. 5: smart mirror", Run: SmartMirror},
		{ID: "ablation-roofline", Paper: "ablation: roofline vs peak-only model", Run: AblationRoofline},
		{ID: "ablation-quant", Paper: "ablation: quantization granularity", Run: AblationQuantGranularity},
		{ID: "ablation-prune", Paper: "ablation: structured vs unstructured pruning", Run: AblationPruning},
		{ID: "ablation-ecall", Paper: "ablation: enclave call batching", Run: AblationEcallBatching},
		{ID: "riscv", Paper: "§II-B: INT8 firmware on the RISC-V+CFU SoC", Run: RISCVBench},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
