package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeArtifactFile(t *testing.T, dir, id string, a Artifact) {
	t.Helper()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "BENCH_"+id+".json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func testBaseline() *Baseline {
	lowTol := 0.01
	return &Baseline{
		Tolerance: 0.15,
		Experiments: map[string]map[string]GateMetric{
			"engine": {
				"engine_speedup_batch8":   {Value: 2.0},
				"arena_floats_per_sample": {Value: 100, Direction: "lower", Tolerance: &lowTol},
			},
			"quantized": {
				"quant_speedup_batch8": {Value: 1.5},
			},
		},
	}
}

func TestGatePassesAtBaseline(t *testing.T) {
	dir := t.TempDir()
	writeArtifactFile(t, dir, "engine", Artifact{
		ID:     "engine",
		Checks: map[string]bool{"parity": true},
		Metrics: []Metric{
			{Name: "engine_speedup_batch8", Value: 2.1},
			{Name: "arena_floats_per_sample", Value: 100},
		},
	})
	writeArtifactFile(t, dir, "quantized", Artifact{
		ID:      "quantized",
		Metrics: []Metric{{Name: "quant_speedup_batch8", Value: 1.6}},
	})
	arts, err := LoadArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range testBaseline().Check(arts) {
		if !res.Ok() {
			t.Errorf("unexpected gate failure: %s", res)
		}
	}
}

func TestGateCatchesRegression(t *testing.T) {
	dir := t.TempDir()
	writeArtifactFile(t, dir, "engine", Artifact{
		ID: "engine",
		Metrics: []Metric{
			// 1.6 < 2.0*(1-0.15): regression.
			{Name: "engine_speedup_batch8", Value: 1.6},
			// lower-is-better with 1% tolerance: 102 > 100*1.01 fails.
			{Name: "arena_floats_per_sample", Value: 102},
		},
	})
	writeArtifactFile(t, dir, "quantized", Artifact{
		ID:      "quantized",
		Metrics: []Metric{{Name: "quant_speedup_batch8", Value: 1.45}}, // within 15%
	})
	arts, err := LoadArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	results := testBaseline().Check(arts)
	byMetric := map[string]GateResult{}
	for _, r := range results {
		byMetric[r.Metric] = r
	}
	if !byMetric["engine_speedup_batch8"].Regressed {
		t.Error("speedup regression not caught")
	}
	if !byMetric["arena_floats_per_sample"].Regressed {
		t.Error("arena growth not caught despite tight tolerance")
	}
	if byMetric["quant_speedup_batch8"].Regressed {
		t.Error("in-tolerance value flagged as regression")
	}
}

func TestGateFailsOnMissingArtifactsAndChecks(t *testing.T) {
	dir := t.TempDir()
	// quantized artifact absent entirely; engine artifact present but
	// missing one gated metric and carrying a failed shape check.
	writeArtifactFile(t, dir, "engine", Artifact{
		ID:      "engine",
		Checks:  map[string]bool{"parity": false},
		Metrics: []Metric{{Name: "engine_speedup_batch8", Value: 3}},
	})
	arts, err := LoadArtifacts(dir)
	if err != nil {
		t.Fatal(err)
	}
	results := testBaseline().Check(arts)
	var missing, failedChecks int
	for _, r := range results {
		if r.Missing {
			missing++
		}
		if len(r.FailedChecks) > 0 {
			failedChecks++
		}
		if r.Ok() && r.Experiment == "engine" {
			t.Errorf("engine result passed despite failed shape check: %s", r)
		}
	}
	if missing != 2 { // arena metric absent + whole quantized artifact absent
		t.Errorf("missing count = %d, want 2", missing)
	}
	if failedChecks == 0 {
		t.Error("failed shape checks not surfaced")
	}
}

// TestCommittedBaselineMatchesRegistry pins the repo's committed
// baseline to real experiments and metric names, so a renamed metric
// cannot silently turn the CI gate into a no-op.
func TestCommittedBaselineMatchesRegistry(t *testing.T) {
	b, err := LoadBaseline("../../bench_baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, e := range Registry() {
		known[e.ID] = true
	}
	if len(b.Experiments) == 0 {
		t.Fatal("committed baseline gates nothing")
	}
	for id := range b.Experiments {
		if !known[id] {
			t.Errorf("baseline gates unknown experiment %q", id)
		}
	}
}
