package bench

import (
	"math"

	"vedliot/internal/accel"
	"vedliot/internal/dataset"
	"vedliot/internal/kenning"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
	"vedliot/internal/train"
)

// DeepCompression49 reproduces the §III compression claim on the Deep
// Compression reference subject (LeNet-300-100): prune, retrain with
// frozen zeros, cluster, Huffman-code, and compare accuracy before and
// after.
func DeepCompression49() (*Report, error) {
	r := newReport("§III — Deep Compression pipeline (LeNet-300-100 class MLP)")

	samples := dataset.Blobs(900, 784, 10, 0.15, 101)
	trainSet, testSet := dataset.Split(samples, 0.25)
	// Quick mode shrinks the hidden layers: training cost scales with the
	// parameter count while the compression ratio is governed by sparsity
	// and coding, so the headline check stays meaningful.
	dims := []int{784, 300, 100, 10}
	if Quick() {
		dims = []int{784, 128, 64, 10}
	}
	g := nn.MLP("lenet-300-100", dims, nn.BuildOptions{Weights: true, Seed: 102})
	if _, err := train.SGD(g, trainSet, train.Config{Epochs: pick(20, 12), LR: 0.1, BatchSize: 32, Seed: 103}); err != nil {
		return nil, err
	}
	accBefore, err := train.Accuracy(g, testSet)
	if err != nil {
		return nil, err
	}

	// Deep Compression stage 1: prune, then retrain the surviving
	// connections (Han et al.'s prune-retrain loop).
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}
	pruneRep, err := optimize.MagnitudePrune(g, 0.92)
	if err != nil {
		return nil, err
	}
	if _, err := train.SGD(g, trainSet, train.Config{Epochs: pick(12, 10), LR: 0.05, BatchSize: 32, Seed: 104, FreezeZeros: true}); err != nil {
		return nil, err
	}
	// Stages 2+3: weight sharing and Huffman coding (no further
	// pruning: sparsity 0 leaves the retrained zeros untouched).
	rep, err := optimize.DeepCompress(g, optimize.DeepCompressConfig{Sparsity: 0, ClusterBits: 6})
	if err != nil {
		return nil, err
	}
	accAfter, err := train.Accuracy(g, testSet)
	if err != nil {
		return nil, err
	}

	r.linef("%-28s %12s", "stage", "bytes")
	for _, s := range rep.Stages {
		r.linef("%-28s %12d", s.Stage, s.Bytes)
	}
	r.linef("compression ratio: %.1fx (paper cites up to 49x [7])", rep.Ratio())
	r.linef("sparsity: %.1f%%, theoretical speed-up %.1fx",
		pruneRep.Sparsity()*100, pruneRep.TheoreticalSpeedup())
	r.linef("accuracy: %.3f -> %.3f (delta %+.3f)", accBefore, accAfter, accAfter-accBefore)

	r.check("baseline accuracy >= 0.8", accBefore >= 0.8)
	r.check("ratio in the deep-compression band (25-60x)", rep.Ratio() >= 25 && rep.Ratio() <= 60)
	r.check("accuracy loss <= 10pp", accBefore-accAfter <= 0.10)
	r.check("stage sizes monotonically non-increasing", func() bool {
		for i := 1; i < len(rep.Stages); i++ {
			if rep.Stages[i].Bytes > rep.Stages[i-1].Bytes {
				return false
			}
		}
		return true
	}())
	return r, nil
}

// TheoryVsHardware reproduces the §III observation that FLOP reductions
// overstate hardware gains: the same pruned model is evaluated on
// devices without zero-skipping, where only structured sparsity pays.
func TheoryVsHardware() (*Report, error) {
	r := newReport("§III — theoretical speed-ups vs hardware reality")
	g := nn.ResNet50(224, nn.BuildOptions{Weights: true, Seed: 7})
	if err := g.InferShapes(1); err != nil {
		return nil, err
	}

	unstructured := g.Clone()
	if err := unstructured.InferShapes(1); err != nil {
		return nil, err
	}
	uRep, err := optimize.MagnitudePrune(unstructured, 0.8)
	if err != nil {
		return nil, err
	}
	structured := g.Clone()
	if err := structured.InferShapes(1); err != nil {
		return nil, err
	}
	sRep, err := optimize.ChannelPrune(structured, 0.5)
	if err != nil {
		return nil, err
	}

	dev, err := accel.FindDevice("Xavier NX")
	if err != nil {
		return nil, err
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		return nil, err
	}
	dense, err := dev.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		return nil, err
	}
	um, err := dev.SparsityAwareEvaluate(w, tensor.INT8, 1, 0, uRep.Sparsity(), false)
	if err != nil {
		return nil, err
	}
	sm, err := dev.SparsityAwareEvaluate(w, tensor.INT8, 1, sRep.Sparsity(), 0, false)
	if err != nil {
		return nil, err
	}

	uTheory := uRep.TheoreticalSpeedup()
	uReal := dense.LatencyMS / um.LatencyMS
	sTheory := sRep.TheoreticalSpeedup()
	sReal := dense.LatencyMS / sm.LatencyMS
	r.linef("%-24s %10s %10s", "pruning", "theory", "hardware")
	r.linef("%-24s %9.2fx %9.2fx", "unstructured 80%", uTheory, uReal)
	r.linef("%-24s %9.2fx %9.2fx", "structured 50% channels", sTheory, sReal)
	r.check("unstructured theory >> hardware gain", uTheory > 2 && uReal < 1.2)
	r.check("structured pruning translates to hardware", sReal > 1.3)
	r.check("structured theory ~ hardware (within 2x)", sReal > sTheory/2)
	return r, nil
}

// KenningPipeline reproduces the framework's measurement reports:
// confusion matrix for a classifier, recall/precision for a detector,
// across two runtimes.
func KenningPipeline() (*Report, error) {
	r := newReport("§III — Kenning benchmarking (confusion matrix + PR curve)")

	// Classifier on two targets.
	samples := dataset.Blobs(600, 16, 4, 0.3, 55)
	trainSet, testSet := dataset.Split(samples, 0.25)
	g := nn.MLP("clf", []int{16, 32, 4}, nn.BuildOptions{Weights: true, Seed: 56})
	if _, err := train.SGD(g, trainSet, train.Config{Epochs: 15, LR: 0.1, BatchSize: 16, Seed: 57}); err != nil {
		return nil, err
	}
	dev, err := accel.FindDevice("Xavier NX")
	if err != nil {
		return nil, err
	}
	targets := []kenning.Target{
		&kenning.CPUTarget{},
		&kenning.SimTarget{Device: dev, Precision: tensor.FP16},
	}
	var accs []float64
	for _, target := range targets {
		ev, err := kenning.Evaluate(g, target, testSet, 4)
		if err != nil {
			return nil, err
		}
		accs = append(accs, ev.Confusion.Accuracy())
		r.linef("target %-18s accuracy %.3f  latency mean %v p95 %v",
			ev.Target, ev.Confusion.Accuracy(), ev.Latency.Mean, ev.Latency.P95)
	}
	r.linef("confusion matrix (cpu-reference):")
	cpuEval, err := kenning.Evaluate(g, &kenning.CPUTarget{}, testSet, 4)
	if err != nil {
		return nil, err
	}
	for _, line := range splitLines(cpuEval.Confusion.String()) {
		r.linef("  %s", line)
	}
	r.check("classifier accuracy >= 0.85", accs[0] >= 0.85)
	r.check("quality identical across runtimes", math.Abs(accs[0]-accs[1]) < 1e-9)

	// Detector PR curve on the arc-detection task using an energy
	// feature score.
	arcs := dataset.ArcCurrent(300, dataset.DefaultArcConfig())
	scores := make([]float64, len(arcs))
	truth := make([]bool, len(arcs))
	for i, a := range arcs {
		scores[i] = waveformNoiseScore(a.X)
		truth[i] = a.Arc
	}
	curve, err := kenning.PRCurve(scores, truth)
	if err != nil {
		return nil, err
	}
	ap := kenning.AveragePrecision(curve)
	r.linef("detector PR: %d points, AP = %.3f", len(curve), ap)
	for _, q := range []int{0, len(curve) / 4, len(curve) / 2, len(curve) - 1} {
		p := curve[q]
		r.linef("  thr %.3f precision %.3f recall %.3f", p.Threshold, p.Precision, p.Recall)
	}
	r.check("detector AP >= 0.9", ap >= 0.9)
	return r, nil
}

// waveformNoiseScore is the hand-crafted arc score: high-frequency
// energy in the window's second half relative to its first half.
func waveformNoiseScore(x []float32) float64 {
	half := len(x) / 2
	return diffPower(x[half:]) / (diffPower(x[:half]) + 1e-9)
}

func diffPower(x []float32) float64 {
	var s float64
	for i := 1; i < len(x); i++ {
		d := float64(x[i] - x[i-1])
		s += d * d
	}
	return s / float64(len(x)-1)
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// AblationQuantGranularity compares per-tensor and per-channel PTQ.
func AblationQuantGranularity() (*Report, error) {
	r := newReport("Ablation — quantization granularity (SNR)")
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 61})
	// Give channels very different scales to expose the difference.
	for _, n := range g.Nodes {
		w := n.Weight(nn.WeightKey)
		if w == nil || len(w.Shape) != 4 {
			continue
		}
		outC := w.Shape[0]
		per := w.NumElements() / outC
		for oc := 0; oc < outC; oc++ {
			scale := float32(math.Pow(4, float64(oc%4)))
			for i := 0; i < per; i++ {
				w.F32[oc*per+i] *= scale
			}
		}
	}
	betterEverywhere := true
	r.linef("%-14s %12s %12s", "layer", "per-tensor", "per-channel")
	for _, n := range g.Nodes {
		w := n.Weight(nn.WeightKey)
		if w == nil || len(w.Shape) != 4 {
			continue
		}
		st := optimize.QuantizationSNR(w, optimize.PerTensor)
		sc := optimize.QuantizationSNR(w, optimize.PerChannel)
		if sc < st {
			betterEverywhere = false
		}
		r.linef("%-14s %10.1fdB %10.1fdB", n.Name, st, sc)
	}
	r.check("per-channel SNR >= per-tensor on every conv", betterEverywhere)
	return r, nil
}

// AblationPruning contrasts structured and unstructured pruning under
// equal-FLOP budgets.
func AblationPruning() (*Report, error) {
	r := newReport("Ablation — pruning structure at matched theoretical FLOPs")
	base := nn.MobileNetV3(224, nn.BuildOptions{Weights: true, Seed: 71})
	if err := base.InferShapes(1); err != nil {
		return nil, err
	}
	dev, err := accel.FindDevice("ZU3 B2304")
	if err != nil {
		return nil, err
	}
	w, err := accel.WorkloadFromGraph(base, tensor.INT8)
	if err != nil {
		return nil, err
	}
	dense, err := dev.Evaluate(w, tensor.INT8, 1)
	if err != nil {
		return nil, err
	}
	// Both prune to ~50% of MACs.
	um, err := dev.SparsityAwareEvaluate(w, tensor.INT8, 1, 0, 0.5, false)
	if err != nil {
		return nil, err
	}
	sm, err := dev.SparsityAwareEvaluate(w, tensor.INT8, 1, 0.5, 0, false)
	if err != nil {
		return nil, err
	}
	r.linef("dense:        %.2f ms", dense.LatencyMS)
	r.linef("unstructured: %.2f ms (x%.2f)", um.LatencyMS, dense.LatencyMS/um.LatencyMS)
	r.linef("structured:   %.2f ms (x%.2f)", sm.LatencyMS, dense.LatencyMS/sm.LatencyMS)
	r.check("structured strictly faster than unstructured", sm.LatencyMS < um.LatencyMS)
	return r, nil
}
