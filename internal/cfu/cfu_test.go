package cfu

import (
	"testing"
	"testing/quick"
)

func TestVectorMACDotProduct(t *testing.T) {
	v := &VectorMAC{}
	if _, err := v.Execute(OpMacClear, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	// lanes a = [1, -2, 3, -4], b = [5, 6, -7, -8]
	a := uint32(0x01) | uint32(0xfe)<<8 | uint32(0x03)<<16 | uint32(0xfc)<<24
	b := uint32(0x05) | uint32(0x06)<<8 | uint32(0xf9)<<16 | uint32(0xf8)<<24
	got, err := v.Execute(OpMacStep, 0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := int32(1*5 + (-2)*6 + 3*(-7) + (-4)*(-8)) // 5 - 12 - 21 + 32 = 4
	if int32(got) != want {
		t.Errorf("dot = %d, want %d", int32(got), want)
	}
	// Accumulation across steps.
	if _, err := v.Execute(OpMacStep, 0, a, b); err != nil {
		t.Fatal(err)
	}
	rd, _ := v.Execute(OpMacRead, 0, 0, 0)
	if int32(rd) != 2*want {
		t.Errorf("acc = %d, want %d", int32(rd), 2*want)
	}
	// Clear resets.
	if _, err := v.Execute(OpMacClear, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if v.Acc() != 0 {
		t.Errorf("acc after clear = %d", v.Acc())
	}
	if _, err := v.Execute(7, 0, 0, 0); err == nil {
		t.Error("unknown funct3 accepted")
	}
}

func TestVectorMACMatchesScalarProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		v := &VectorMAC{}
		if _, err := v.Execute(OpMacClear, 0, 0, 0); err != nil {
			return false
		}
		got, err := v.Execute(OpMacStep, 0, a, b)
		if err != nil {
			return false
		}
		var want int32
		for lane := 0; lane < 4; lane++ {
			want += int32(int8(a>>(8*lane))) * int32(int8(b>>(8*lane)))
		}
		return int32(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSatALU(t *testing.T) {
	s := SatALU{}
	cases := []struct {
		f3   uint32
		a, b int32
		want int32
	}{
		{OpSatAdd, 1, 2, 3},
		{OpSatAdd, 0x7fffffff, 1, 0x7fffffff},    // saturate high
		{OpSatAdd, -0x80000000, -1, -0x80000000}, // saturate low
		{OpSatSub, -0x80000000, 1, -0x80000000},  // saturate low
		{OpSatSub, 0x7fffffff, -1, 0x7fffffff},   // saturate high
		{OpClip, 100, 6, 6},
		{OpClip, -100, 6, -6},
		{OpClip, 3, 6, 3},
		{OpClip, 3, -6, 3}, // negative limit treated as |limit|
	}
	for _, c := range cases {
		got, err := s.Execute(c.f3, 0, uint32(c.a), uint32(c.b))
		if err != nil {
			t.Fatalf("f3=%d: %v", c.f3, err)
		}
		if int32(got) != c.want {
			t.Errorf("f3=%d (%d, %d) = %d, want %d", c.f3, c.a, c.b, int32(got), c.want)
		}
	}
	if _, err := s.Execute(9, 0, 0, 0); err == nil {
		t.Error("unknown funct3 accepted")
	}
}

func TestSatAddNeverWrapsProperty(t *testing.T) {
	s := SatALU{}
	f := func(a, b int32) bool {
		got, err := s.Execute(OpSatAdd, 0, uint32(a), uint32(b))
		if err != nil {
			return false
		}
		exact := int64(a) + int64(b)
		r := int64(int32(got))
		if exact > 0x7fffffff {
			return r == 0x7fffffff
		}
		if exact < -0x80000000 {
			return r == -0x80000000
		}
		return r == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestLatencies(t *testing.T) {
	if (&VectorMAC{}).Latency() != 1 || (SatALU{}).Latency() != 1 {
		t.Error("reference CFUs should be single-cycle")
	}
}
