package cfu

import "testing"

// FuzzVectorMAC replays a fuzz-chosen operation sequence against a
// scalar Go model of the accumulator: each MacStep's dot4 contribution
// is recomputed lane by lane, and the unit's returned value and Acc()
// must track the model exactly, including int32 wrap-around.
func FuzzVectorMAC(f *testing.F) {
	f.Add([]byte{1, 0xff, 0x80, 1, 2, 0x7f, 0x7f, 0x7f, 0x7f, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		unit := &VectorMAC{}
		var model int32
		for len(data) >= 9 {
			op := uint32(data[0]) % 3
			rs1 := uint32(data[1]) | uint32(data[2])<<8 | uint32(data[3])<<16 | uint32(data[4])<<24
			rs2 := uint32(data[5]) | uint32(data[6])<<8 | uint32(data[7])<<16 | uint32(data[8])<<24
			data = data[9:]
			got, err := unit.Execute(op, 0, rs1, rs2)
			if err != nil {
				t.Fatal(err)
			}
			switch op {
			case OpMacClear:
				model = 0
				if got != 0 {
					t.Fatalf("clear returned %#x", got)
				}
			case OpMacStep:
				for lane := 0; lane < 4; lane++ {
					model += int32(int8(rs1>>(8*lane))) * int32(int8(rs2>>(8*lane)))
				}
				if got != uint32(model) {
					t.Fatalf("step(%#x, %#x) returned %#x, model %#x", rs1, rs2, got, uint32(model))
				}
			case OpMacRead:
				if got != uint32(model) {
					t.Fatalf("read returned %#x, model %#x", got, uint32(model))
				}
			}
			if unit.Acc() != model {
				t.Fatalf("acc %#x diverged from model %#x", unit.Acc(), model)
			}
		}
		// Unknown funct3 values must error, never corrupt the state.
		if _, err := unit.Execute(7, 0, 1, 2); err == nil {
			t.Fatal("funct3=7 did not error")
		}
		if unit.Acc() != model {
			t.Fatalf("error path changed acc to %#x, model %#x", unit.Acc(), model)
		}
	})
}

// FuzzSatALU checks the saturating ALU against int64 reference
// arithmetic: results must clamp to int32 range instead of wrapping,
// and clip must bound the operand symmetrically.
func FuzzSatALU(f *testing.F) {
	f.Add(uint32(0x7fffffff), uint32(1))
	f.Add(uint32(0x80000000), uint32(0x80000000))
	f.Fuzz(func(t *testing.T, rs1, rs2 uint32) {
		var unit SatALU
		a, b := int64(int32(rs1)), int64(int32(rs2))

		add, err := unit.Execute(OpSatAdd, 0, rs1, rs2)
		if err != nil {
			t.Fatal(err)
		}
		if want := satRef(a + b); int32(add) != want {
			t.Fatalf("satadd(%d, %d) = %d, want %d", a, b, int32(add), want)
		}

		sub, err := unit.Execute(OpSatSub, 0, rs1, rs2)
		if err != nil {
			t.Fatal(err)
		}
		if want := satRef(a - b); int32(sub) != want {
			t.Fatalf("satsub(%d, %d) = %d, want %d", a, b, int32(sub), want)
		}

		clip, err := unit.Execute(OpClip, 0, rs1, rs2)
		if err != nil {
			t.Fatal(err)
		}
		lim := b
		if lim < 0 {
			lim = -lim
		}
		want := a
		if want > lim {
			want = lim
		}
		if want < -lim {
			want = -lim
		}
		if int64(int32(clip)) != want {
			t.Fatalf("clip(%d, ±%d) = %d, want %d", a, lim, int32(clip), want)
		}
	})
}

func satRef(v int64) int32 {
	if v > 0x7fffffff {
		return 0x7fffffff
	}
	if v < -0x80000000 {
		return -0x80000000
	}
	return int32(v)
}
