// Package cfu provides Custom Function Units for the simulated RISC-V
// core — the accelerator style the paper added to Renode (§II-B): "a
// CFU is an accelerator tightly coupled with the CPU, providing
// functionality explicitly designed for the planned ML workflow".
package cfu

import "fmt"

// VectorMAC operations (funct3 values).
const (
	OpMacClear = 0 // acc = 0
	OpMacStep  = 1 // acc += dot4(rs1, rs2); returns acc
	OpMacRead  = 2 // returns acc
)

// VectorMAC is a 4-lane INT8 multiply-accumulate unit with an internal
// accumulator: one instruction retires four MACs, the core ML kernel of
// quantized CNN inference.
type VectorMAC struct {
	acc int32
}

// Name identifies the unit.
func (v *VectorMAC) Name() string { return "vector-mac-int8x4" }

// Latency implements riscv.CFU: fully pipelined, one cycle.
func (v *VectorMAC) Latency() int { return 1 }

// Execute implements riscv.CFU.
func (v *VectorMAC) Execute(funct3, funct7, rs1, rs2 uint32) (uint32, error) {
	switch funct3 {
	case OpMacClear:
		v.acc = 0
		return 0, nil
	case OpMacStep:
		for lane := 0; lane < 4; lane++ {
			a := int32(int8(rs1 >> (8 * lane)))
			b := int32(int8(rs2 >> (8 * lane)))
			v.acc += a * b
		}
		return uint32(v.acc), nil
	case OpMacRead:
		return uint32(v.acc), nil
	}
	return 0, fmt.Errorf("cfu: vector-mac: unknown funct3 %d", funct3)
}

// Acc exposes the accumulator for test assertions.
func (v *VectorMAC) Acc() int32 { return v.acc }

// SatALU operations (funct3 values).
const (
	OpSatAdd = 0 // saturating signed add
	OpSatSub = 1 // saturating signed subtract
	OpClip   = 2 // clip rs1 into [-rs2, rs2]
)

// SatALU implements saturating DSP arithmetic, the second reference CFU
// (activation clipping and accumulation without overflow wrap-around).
type SatALU struct{}

// Name identifies the unit.
func (SatALU) Name() string { return "sat-alu" }

// Latency implements riscv.CFU.
func (SatALU) Latency() int { return 1 }

// Execute implements riscv.CFU.
func (SatALU) Execute(funct3, funct7, rs1, rs2 uint32) (uint32, error) {
	a, b := int64(int32(rs1)), int64(int32(rs2))
	switch funct3 {
	case OpSatAdd:
		return uint32(saturate32(a + b)), nil
	case OpSatSub:
		return uint32(saturate32(a - b)), nil
	case OpClip:
		lim := b
		if lim < 0 {
			lim = -lim
		}
		if a > lim {
			a = lim
		}
		if a < -lim {
			a = -lim
		}
		return uint32(int32(a)), nil
	}
	return 0, fmt.Errorf("cfu: sat-alu: unknown funct3 %d", funct3)
}

func saturate32(v int64) int32 {
	if v > 0x7fffffff {
		return 0x7fffffff
	}
	if v < -0x80000000 {
		return -0x80000000
	}
	return int32(v)
}
