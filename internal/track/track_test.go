package track

import (
	"math"
	"testing"
)

func TestKalmanConvergesToConstantVelocity(t *testing.T) {
	k := NewKalman(DefaultKalmanConfig())
	// Object moving at (2, -1) per frame.
	for i := 0; i < 50; i++ {
		k.Predict()
		k.Update(Point{X: float64(i) * 2, Y: float64(i) * -1})
	}
	v := k.Velocity()
	if math.Abs(v.X-2) > 0.2 || math.Abs(v.Y+1) > 0.2 {
		t.Errorf("velocity = %+v, want ~(2,-1)", v)
	}
	s := k.State()
	if math.Abs(s.X-98) > 2 || math.Abs(s.Y+49) > 2 {
		t.Errorf("state = %+v, want ~(98,-49)", s)
	}
}

func TestKalmanSmoothsNoise(t *testing.T) {
	k := NewKalman(DefaultKalmanConfig())
	// Static object with noisy measurements. The pseudo-noise phase
	// step (78.233 rad ≈ 2.83 rad effective) decorrelates sample to
	// sample, so a correct filter averages it away.
	var rawErr, filtErr float64
	n := 0
	for i := 0; i < 200; i++ {
		noise := 3 * math.Sin(float64(i)*78.233)
		m := Point{X: 50 + noise, Y: 50 - noise}
		k.Predict()
		k.Update(m)
		if i > 50 {
			s := k.State()
			rawErr += math.Abs(noise)
			filtErr += math.Abs(s.X - 50)
			n++
		}
	}
	if filtErr >= rawErr {
		t.Errorf("filter (%.1f) no better than raw (%.1f)", filtErr/float64(n), rawErr/float64(n))
	}
}

func TestKalmanPredictWithoutUpdateCoasts(t *testing.T) {
	k := NewKalman(DefaultKalmanConfig())
	for i := 0; i < 20; i++ {
		k.Predict()
		k.Update(Point{X: float64(i) * 5, Y: 0})
	}
	// Miss 3 frames: position should keep advancing by ~velocity.
	before := k.State()
	for i := 0; i < 3; i++ {
		k.Predict()
	}
	after := k.State()
	if after.X <= before.X {
		t.Error("coasting did not advance position")
	}
	if k.Misses != 3 {
		t.Errorf("misses = %d", k.Misses)
	}
}

func TestTrackerAssociatesAndRetires(t *testing.T) {
	tr := NewTracker(DefaultKalmanConfig(), 30, 2)
	// Two objects crossing the frame.
	for i := 0; i < 10; i++ {
		tr.Step([]Detection{
			{P: Point{X: float64(i) * 10, Y: 100}, Label: "alice"},
			{P: Point{X: 500 - float64(i)*10, Y: 300}, Label: "bob"},
		})
	}
	if len(tr.Tracks()) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tr.Tracks()))
	}
	ids := map[int]string{}
	for _, trk := range tr.Tracks() {
		ids[trk.ID] = trk.Label
	}
	if len(ids) != 2 {
		t.Errorf("expected 2 distinct IDs, got %v", ids)
	}
	// One object disappears; its track must retire after MaxMisses.
	for i := 10; i < 15; i++ {
		tr.Step([]Detection{{P: Point{X: float64(i) * 10, Y: 100}, Label: "alice"}})
	}
	if len(tr.Tracks()) != 1 {
		t.Fatalf("tracks after disappearance = %d, want 1", len(tr.Tracks()))
	}
	if tr.Tracks()[0].Label != "alice" {
		t.Errorf("surviving track = %q", tr.Tracks()[0].Label)
	}
}

func TestTrackerIdentityMaintainedThroughMiss(t *testing.T) {
	tr := NewTracker(DefaultKalmanConfig(), 50, 3)
	tr.Step([]Detection{{P: Point{X: 100, Y: 100}, Label: "p"}})
	id := tr.Tracks()[0].ID
	// Miss one frame, then reappear nearby: same ID.
	tr.Step(nil)
	tr.Step([]Detection{{P: Point{X: 105, Y: 102}}})
	if len(tr.Tracks()) != 1 || tr.Tracks()[0].ID != id {
		t.Errorf("identity lost: %+v", tr.Tracks())
	}
	// Far detection outside the gate spawns a new track.
	tr.Step([]Detection{{P: Point{X: 105, Y: 102}}, {P: Point{X: 900, Y: 900}}})
	if len(tr.Tracks()) != 2 {
		t.Errorf("gate failed: %d tracks", len(tr.Tracks()))
	}
}
