// Package track implements the Kalman-filter person/face trackers of
// the smart-mirror pipeline (Fig. 5): constant-velocity filters over 2-D
// detections, plus a greedy detection-to-track associator.
package track

import (
	"math"
	"sort"
)

// Point is a 2-D measurement (e.g. a detection centroid in pixels).
type Point struct {
	X, Y float64
}

// KalmanConfig tunes the constant-velocity filter.
type KalmanConfig struct {
	// ProcessNoise is the acceleration noise spectral density.
	ProcessNoise float64
	// MeasurementNoise is the detector's position noise variance.
	MeasurementNoise float64
	// InitialVariance seeds the state covariance diagonal.
	InitialVariance float64
}

// DefaultKalmanConfig suits pixel-space tracking at camera frame rates.
func DefaultKalmanConfig() KalmanConfig {
	return KalmanConfig{ProcessNoise: 1, MeasurementNoise: 4, InitialVariance: 100}
}

// Kalman is a constant-velocity filter with state [x y vx vy]. The
// x and y axes are independent, so the filter runs two 2-state
// (position, velocity) filters sharing parameters — numerically
// identical to the 4-state block-diagonal form and much simpler.
type Kalman struct {
	cfg KalmanConfig

	// Per-axis state and covariance.
	x, vx, y, vy float64
	// Covariance entries per axis: [p_pp, p_pv, p_vv].
	px, py [3]float64

	initialized bool
	// Age counts prediction steps; Hits counts updates.
	Age, Hits int
	// Misses counts consecutive predictions without update.
	Misses int
}

// NewKalman creates an uninitialized filter.
func NewKalman(cfg KalmanConfig) *Kalman {
	return &Kalman{cfg: cfg}
}

// State returns the current position estimate.
func (k *Kalman) State() Point { return Point{k.x, k.y} }

// Velocity returns the current velocity estimate.
func (k *Kalman) Velocity() Point { return Point{k.vx, k.vy} }

// Predict advances the state one frame (dt = 1).
func (k *Kalman) Predict() Point {
	if !k.initialized {
		return k.State()
	}
	k.x += k.vx
	k.y += k.vy
	predictAxis(&k.px, k.cfg.ProcessNoise)
	predictAxis(&k.py, k.cfg.ProcessNoise)
	k.Age++
	k.Misses++
	return k.State()
}

func predictAxis(p *[3]float64, q float64) {
	// P = F P F' + Q with F = [1 1; 0 1], Q = q*[1/4 1/2; 1/2 1]
	pp, pv, vv := p[0], p[1], p[2]
	p[0] = pp + 2*pv + vv + q/4
	p[1] = pv + vv + q/2
	p[2] = vv + q
}

// Update fuses a measurement; the first update initializes the state.
func (k *Kalman) Update(m Point) {
	if !k.initialized {
		k.x, k.y = m.X, m.Y
		iv := k.cfg.InitialVariance
		k.px = [3]float64{iv, 0, iv}
		k.py = [3]float64{iv, 0, iv}
		k.initialized = true
		k.Hits++
		k.Misses = 0
		return
	}
	k.x, k.vx = updateAxis(&k.px, k.x, k.vx, m.X, k.cfg.MeasurementNoise)
	k.y, k.vy = updateAxis(&k.py, k.y, k.vy, m.Y, k.cfg.MeasurementNoise)
	k.Hits++
	k.Misses = 0
}

func updateAxis(p *[3]float64, pos, vel, meas, r float64) (newPos, newVel float64) {
	s := p[0] + r
	kp := p[0] / s
	kv := p[1] / s
	innov := meas - pos
	newPos = pos + kp*innov
	newVel = vel + kv*innov
	pp, pv, vv := p[0], p[1], p[2]
	p[0] = (1 - kp) * pp
	p[1] = (1 - kp) * pv
	p[2] = vv - kv*pv
	return newPos, newVel
}

// Track is one tracked object.
type Track struct {
	ID     int
	Filter *Kalman
	// Label carries the classifier identity (face name, object class).
	Label string
}

// Tracker associates per-frame detections with persistent tracks.
type Tracker struct {
	cfg KalmanConfig
	// GateDistance is the maximum association distance.
	GateDistance float64
	// MaxMisses drops a track after this many missed frames.
	MaxMisses int

	tracks []*Track
	nextID int
}

// NewTracker builds a tracker with the given association gate.
func NewTracker(cfg KalmanConfig, gate float64, maxMisses int) *Tracker {
	return &Tracker{cfg: cfg, GateDistance: gate, MaxMisses: maxMisses, nextID: 1}
}

// Tracks returns the live tracks.
func (t *Tracker) Tracks() []*Track { return t.tracks }

// Detection is one frame observation.
type Detection struct {
	P     Point
	Label string
}

// Step advances all tracks and associates the frame's detections:
// greedy nearest-neighbour within the gate, new tracks for unmatched
// detections, and retirement of stale tracks.
func (t *Tracker) Step(dets []Detection) {
	for _, tr := range t.tracks {
		tr.Filter.Predict()
	}
	type pair struct {
		ti, di int
		d      float64
	}
	var pairs []pair
	for ti, tr := range t.tracks {
		s := tr.Filter.State()
		for di, d := range dets {
			dist := math.Hypot(s.X-d.P.X, s.Y-d.P.Y)
			if dist <= t.GateDistance {
				pairs = append(pairs, pair{ti, di, dist})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })
	usedT := make(map[int]bool)
	usedD := make(map[int]bool)
	for _, p := range pairs {
		if usedT[p.ti] || usedD[p.di] {
			continue
		}
		usedT[p.ti] = true
		usedD[p.di] = true
		tr := t.tracks[p.ti]
		tr.Filter.Update(dets[p.di].P)
		if dets[p.di].Label != "" {
			tr.Label = dets[p.di].Label
		}
	}
	// New tracks for unmatched detections.
	for di, d := range dets {
		if usedD[di] {
			continue
		}
		f := NewKalman(t.cfg)
		f.Update(d.P)
		t.tracks = append(t.tracks, &Track{ID: t.nextID, Filter: f, Label: d.Label})
		t.nextID++
	}
	// Retire stale tracks.
	kept := t.tracks[:0]
	for _, tr := range t.tracks {
		if tr.Filter.Misses <= t.MaxMisses {
			kept = append(kept, tr)
		}
	}
	t.tracks = kept
}
