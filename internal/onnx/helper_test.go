package onnx

import (
	"vedliot/internal/inference"
	"vedliot/internal/nn"
)

// newRunner avoids importing inference in the main test file's
// signature clutter.
func newRunner(g *nn.Graph) (*inference.Runner, error) {
	return inference.NewRunner(g)
}
