package onnx

import (
	"bytes"
	"reflect"
	"testing"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func roundTrip(t *testing.T, g *nn.Graph) *nn.Graph {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTripPreservesStructure(t *testing.T) {
	g := nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 15})
	back := roundTrip(t, g)
	if back.Name != g.Name || len(back.Nodes) != len(g.Nodes) {
		t.Fatalf("structure mismatch: %d vs %d nodes", len(back.Nodes), len(g.Nodes))
	}
	for i, n := range g.Nodes {
		bn := back.Nodes[i]
		if bn.Name != n.Name || bn.Op != n.Op {
			t.Fatalf("node %d: %s/%s vs %s/%s", i, bn.Name, bn.Op, n.Name, n.Op)
		}
		if len(bn.Inputs) != len(n.Inputs) {
			t.Fatalf("node %s inputs differ", n.Name)
		}
		if !reflect.DeepEqual(bn.Attrs, n.Attrs) {
			t.Fatalf("node %s attrs differ: %+v vs %+v", n.Name, bn.Attrs, n.Attrs)
		}
		for _, key := range n.WeightKeys() {
			w, bw := n.Weight(key), bn.Weight(key)
			if bw == nil {
				t.Fatalf("node %s lost weight %s", n.Name, key)
			}
			if !w.Shape.Equal(bw.Shape) || w.DType != bw.DType {
				t.Fatalf("node %s weight %s metadata differs", n.Name, key)
			}
			for j := range w.F32 {
				if w.F32[j] != bw.F32[j] {
					t.Fatalf("node %s weight %s payload differs at %d", n.Name, key, j)
				}
			}
		}
	}
	// Outputs and behaviour: identical shapes after inference.
	if err := back.InferShapes(1); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripINT8Weights(t *testing.T) {
	g := nn.NewGraph("q")
	g.MustAdd(&nn.Node{Name: "in", Op: nn.OpInput, Attrs: nn.Attrs{Shape: []int{4}}})
	d := &nn.Node{Name: "fc", Op: nn.OpDense, Inputs: []string{"in"}, Attrs: nn.Attrs{OutC: 2, Bias: true}}
	w := tensor.New(tensor.INT8, 2, 4)
	w.Quant = tensor.QuantParams{Scale: 0.05, Zero: 3}
	for i := range w.I8 {
		w.I8[i] = int8(i*7 - 20)
	}
	d.SetWeight(nn.WeightKey, w)
	d.SetWeight(nn.BiasKey, tensor.New(tensor.FP32, 2))
	g.MustAdd(d)
	g.Outputs = []string{"fc"}

	back := roundTrip(t, g)
	bw := back.Node("fc").Weight(nn.WeightKey)
	if bw.DType != tensor.INT8 || bw.Quant.Scale != 0.05 || bw.Quant.Zero != 3 {
		t.Fatalf("quant metadata lost: %+v", bw.Quant)
	}
	for i := range w.I8 {
		if bw.I8[i] != w.I8[i] {
			t.Fatal("INT8 payload differs")
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	g := nn.MLP("m", []int{4, 3, 2}, nn.BuildOptions{Weights: true})
	var buf bytes.Buffer
	if err := Encode(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-3] ^= 0x40 // corrupt a weight byte
	if _, err := Decode(bytes.NewReader(data)); err == nil {
		t.Error("corrupted stream decoded")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream decoded")
	}
	// Right magic, wrong version.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	buf.Write([]byte{9, 0, 0, 0, 0, 0, 0, 0})
	buf.Write(make([]byte, 32))
	if _, err := Decode(&buf); err == nil {
		t.Error("future version decoded")
	}
}

func TestEncodeRejectsInvalidGraph(t *testing.T) {
	g := nn.NewGraph("bad")
	g.MustAdd(&nn.Node{Name: "x", Op: nn.OpReLU, Inputs: []string{"ghost"}})
	g.Outputs = []string{"x"}
	var buf bytes.Buffer
	if err := Encode(&buf, g); err == nil {
		t.Error("invalid graph encoded")
	}
}

func TestRoundTripExecutableEquivalence(t *testing.T) {
	// A decoded model must compute exactly the same function.
	g := nn.MotorNet(64, 5, nn.BuildOptions{Weights: true, Seed: 33})
	back := roundTrip(t, g)

	runOn := func(m *nn.Graph) []float32 {
		t.Helper()
		if err := m.InferShapes(1); err != nil {
			t.Fatal(err)
		}
		r, err := newRunner(m)
		if err != nil {
			t.Fatal(err)
		}
		in := tensor.New(tensor.FP32, 1, 1, 1, 64)
		for i := range in.F32 {
			in.F32[i] = float32(i%7) - 3
		}
		out, err := r.RunSingle(in)
		if err != nil {
			t.Fatal(err)
		}
		return out.F32
	}
	a, b := runOn(g), runOn(back)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outputs differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
