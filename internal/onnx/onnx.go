// Package onnx provides VNNX, the toolchain's model interchange format.
//
// The paper's toolchain (§III) uses ONNX as "the industry-standard open
// format to represent machine learning models" into which every tool
// converts: "all intermediate conversions and optimizations are
// performed on ONNX models". ONNX itself is protobuf-based; VNNX is a
// self-contained binary encoding of the same graph information (ops,
// attributes, initializers/weights, inputs/outputs) with an integrity
// checksum, filling the identical interchange role between the stages
// of this reproduction.
package onnx

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// Format constants.
const (
	Magic   = "VNNX"
	Version = 1
)

// Encode serializes a graph.
func Encode(w io.Writer, g *nn.Graph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("onnx: refusing to encode invalid graph: %w", err)
	}
	var body bytes.Buffer
	bw := &writer{w: &body}

	bw.str(g.Name)
	bw.u32(uint32(len(g.Nodes)))
	for _, n := range g.Nodes {
		encodeNode(bw, n)
	}
	bw.u32(uint32(len(g.Outputs)))
	for _, o := range g.Outputs {
		bw.str(o)
	}
	if bw.err != nil {
		return bw.err
	}

	sum := sha256.Sum256(body.Bytes())
	out := bufio.NewWriter(w)
	if _, err := out.WriteString(Magic); err != nil {
		return err
	}
	hdr := &writer{w: out}
	hdr.u32(Version)
	hdr.u32(uint32(body.Len()))
	if hdr.err != nil {
		return hdr.err
	}
	if _, err := out.Write(sum[:]); err != nil {
		return err
	}
	if _, err := out.Write(body.Bytes()); err != nil {
		return err
	}
	return out.Flush()
}

func encodeNode(bw *writer, n *nn.Node) {
	bw.str(n.Name)
	bw.str(n.Op.String())
	bw.u32(uint32(len(n.Inputs)))
	for _, in := range n.Inputs {
		bw.str(in)
	}
	a := n.Attrs
	for _, v := range []int{
		a.KernelH, a.KernelW, a.StrideH, a.StrideW, a.PadH, a.PadW,
		a.Groups, a.OutC, a.Scale,
	} {
		bw.i32(int32(v))
	}
	bw.f32(a.Alpha)
	bw.f32(a.Eps)
	if a.Bias {
		bw.u32(1)
	} else {
		bw.u32(0)
	}
	bw.u32(uint32(len(a.Shape)))
	for _, d := range a.Shape {
		bw.i32(int32(d))
	}
	keys := n.WeightKeys()
	bw.u32(uint32(len(keys)))
	for _, k := range keys {
		bw.str(k)
		encodeTensor(bw, n.Weights[k])
	}
}

func encodeTensor(bw *writer, t *tensor.Tensor) {
	bw.u32(uint32(t.DType))
	bw.u32(uint32(len(t.Shape)))
	for _, d := range t.Shape {
		bw.i32(int32(d))
	}
	bw.f32(t.Quant.Scale)
	bw.i32(t.Quant.Zero)
	switch t.DType {
	case tensor.FP32:
		for _, v := range t.F32 {
			bw.f32(v)
		}
	case tensor.FP16:
		for _, v := range t.F16 {
			bw.u16(v)
		}
	case tensor.INT8:
		for _, v := range t.I8 {
			bw.i8(v)
		}
	}
}

// Decode reads a VNNX stream and reconstructs the graph, verifying the
// checksum.
func Decode(r io.Reader) (*nn.Graph, error) {
	magic := make([]byte, 4)
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("onnx: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("onnx: bad magic %q", magic)
	}
	hdr := &reader{r: r}
	version := hdr.u32()
	bodyLen := hdr.u32()
	if hdr.err != nil {
		return nil, hdr.err
	}
	if version != Version {
		return nil, fmt.Errorf("onnx: unsupported version %d", version)
	}
	var sum [32]byte
	if _, err := io.ReadFull(r, sum[:]); err != nil {
		return nil, fmt.Errorf("onnx: reading checksum: %w", err)
	}
	body := make([]byte, bodyLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("onnx: reading body: %w", err)
	}
	if sha256.Sum256(body) != sum {
		return nil, fmt.Errorf("onnx: checksum mismatch (corrupted model)")
	}

	br := &reader{r: bytes.NewReader(body)}
	name := br.str()
	g := nn.NewGraph(name)
	numNodes := br.u32()
	for i := uint32(0); i < numNodes && br.err == nil; i++ {
		n, err := decodeNode(br)
		if err != nil {
			return nil, err
		}
		if err := g.Add(n); err != nil {
			return nil, err
		}
	}
	numOut := br.u32()
	for i := uint32(0); i < numOut && br.err == nil; i++ {
		g.Outputs = append(g.Outputs, br.str())
	}
	if br.err != nil {
		return nil, fmt.Errorf("onnx: decoding body: %w", br.err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("onnx: decoded graph invalid: %w", err)
	}
	return g, nil
}

func decodeNode(br *reader) (*nn.Node, error) {
	n := &nn.Node{Name: br.str()}
	opName := br.str()
	op, err := nn.ParseOpType(opName)
	if err != nil {
		return nil, err
	}
	n.Op = op
	numIn := br.u32()
	for i := uint32(0); i < numIn && br.err == nil; i++ {
		n.Inputs = append(n.Inputs, br.str())
	}
	ints := make([]int32, 9)
	for i := range ints {
		ints[i] = br.i32()
	}
	n.Attrs.KernelH, n.Attrs.KernelW = int(ints[0]), int(ints[1])
	n.Attrs.StrideH, n.Attrs.StrideW = int(ints[2]), int(ints[3])
	n.Attrs.PadH, n.Attrs.PadW = int(ints[4]), int(ints[5])
	n.Attrs.Groups, n.Attrs.OutC, n.Attrs.Scale = int(ints[6]), int(ints[7]), int(ints[8])
	n.Attrs.Alpha = br.f32()
	n.Attrs.Eps = br.f32()
	n.Attrs.Bias = br.u32() == 1
	shapeLen := br.u32()
	if shapeLen > 16 {
		return nil, fmt.Errorf("onnx: implausible shape rank %d", shapeLen)
	}
	for i := uint32(0); i < shapeLen; i++ {
		n.Attrs.Shape = append(n.Attrs.Shape, int(br.i32()))
	}
	numW := br.u32()
	if numW > 16 {
		return nil, fmt.Errorf("onnx: implausible weight count %d", numW)
	}
	for i := uint32(0); i < numW && br.err == nil; i++ {
		key := br.str()
		t, err := decodeTensor(br)
		if err != nil {
			return nil, err
		}
		n.SetWeight(key, t)
	}
	return n, br.err
}

func decodeTensor(br *reader) (*tensor.Tensor, error) {
	dt := tensor.DType(br.u32())
	if dt != tensor.FP32 && dt != tensor.FP16 && dt != tensor.INT8 {
		return nil, fmt.Errorf("onnx: bad dtype %d", int(dt))
	}
	rank := br.u32()
	if rank > 8 {
		return nil, fmt.Errorf("onnx: implausible tensor rank %d", rank)
	}
	shape := make([]int, rank)
	for i := range shape {
		shape[i] = int(br.i32())
		if shape[i] <= 0 || shape[i] > 1<<28 {
			return nil, fmt.Errorf("onnx: implausible dim %d", shape[i])
		}
	}
	t := tensor.New(dt, shape...)
	t.Quant.Scale = br.f32()
	t.Quant.Zero = br.i32()
	switch dt {
	case tensor.FP32:
		for i := range t.F32 {
			t.F32[i] = br.f32()
		}
	case tensor.FP16:
		for i := range t.F16 {
			t.F16[i] = br.u16()
		}
	case tensor.INT8:
		for i := range t.I8 {
			t.I8[i] = br.i8()
		}
	}
	return t, br.err
}

// writer accumulates little-endian primitives, remembering the first
// error.
type writer struct {
	w   io.Writer
	err error
}

func (w *writer) u32(v uint32) {
	if w.err != nil {
		return
	}
	w.err = binary.Write(w.w, binary.LittleEndian, v)
}
func (w *writer) i32(v int32)   { w.u32(uint32(v)) }
func (w *writer) u16(v uint16)  { w.u32r(binary.Write(w.w, binary.LittleEndian, v)) }
func (w *writer) i8(v int8)     { w.u32r(binary.Write(w.w, binary.LittleEndian, v)) }
func (w *writer) f32(v float32) { w.u32(math.Float32bits(v)) }
func (w *writer) u32r(err error) {
	if w.err == nil {
		w.err = err
	}
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}

// reader mirrors writer.
type reader struct {
	r   io.Reader
	err error
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var v uint32
	r.err = binary.Read(r.r, binary.LittleEndian, &v)
	return v
}
func (r *reader) i32() int32 { return int32(r.u32()) }
func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	var v uint16
	r.err = binary.Read(r.r, binary.LittleEndian, &v)
	return v
}
func (r *reader) i8() int8 {
	if r.err != nil {
		return 0
	}
	var v int8
	r.err = binary.Read(r.r, binary.LittleEndian, &v)
	return v
}
func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }
func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("onnx: implausible string length %d", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}
