package release

import (
	"crypto/ed25519"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// keys.go is the file-based key plumbing the CLIs share: ed25519 key
// pairs stored as hex text files (<name>.key holds the 32-byte private
// seed, <name>.pub the public key), and the conventional key-directory
// layout — signer, log, witness — that LoadPolicyDir turns into a
// deploy Policy.

// Key-file basenames of the conventional release key directory.
const (
	// SignerKeyName is the release signing key pair basename.
	SignerKeyName = "signer"
	// LogKeyName is the checkpoint signing key pair basename.
	LogKeyName = "log"
	// WitnessKeyName is the witness countersigning key pair basename.
	WitnessKeyName = "witness"
)

// SaveKeyPair writes priv's seed to dir/<name>.key (0600) and its
// public key to dir/<name>.pub, creating dir if needed.
func SaveKeyPair(dir, name string, priv ed25519.PrivateKey) error {
	if len(priv) != ed25519.PrivateKeySize {
		return fmt.Errorf("release: bad private key length %d", len(priv))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("release: create key dir %s: %w", dir, err)
	}
	seed := hex.EncodeToString(priv.Seed()) + "\n"
	if err := os.WriteFile(filepath.Join(dir, name+".key"), []byte(seed), 0o600); err != nil {
		return fmt.Errorf("release: save private key: %w", err)
	}
	pub := hex.EncodeToString(priv.Public().(ed25519.PublicKey)) + "\n"
	if err := os.WriteFile(filepath.Join(dir, name+".pub"), []byte(pub), 0o644); err != nil {
		return fmt.Errorf("release: save public key: %w", err)
	}
	return nil
}

// LoadPrivateKey reads a hex seed file written by SaveKeyPair.
func LoadPrivateKey(path string) (ed25519.PrivateKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("release: load private key %s: %w", path, err)
	}
	seed, err := hex.DecodeString(strings.TrimSpace(string(data)))
	if err != nil {
		return nil, fmt.Errorf("release: parse private key %s: %w", path, err)
	}
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("release: private key %s is %d bytes, want %d", path, len(seed), ed25519.SeedSize)
	}
	return ed25519.NewKeyFromSeed(seed), nil
}

// LoadPublicKey reads a hex public-key file written by SaveKeyPair.
func LoadPublicKey(path string) (ed25519.PublicKey, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("release: load public key %s: %w", path, err)
	}
	pub, err := hex.DecodeString(strings.TrimSpace(string(data)))
	if err != nil {
		return nil, fmt.Errorf("release: parse public key %s: %w", path, err)
	}
	if len(pub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("release: public key %s is %d bytes, want %d", path, len(pub), ed25519.PublicKeySize)
	}
	return ed25519.PublicKey(pub), nil
}

// GenerateKeyDir creates the conventional key directory: fresh signer,
// log and witness key pairs under dir.
func GenerateKeyDir(dir string) error {
	for _, name := range []string{SignerKeyName, LogKeyName, WitnessKeyName} {
		_, priv, err := ed25519.GenerateKey(nil)
		if err != nil {
			return fmt.Errorf("release: generate %s key: %w", name, err)
		}
		if err := SaveKeyPair(dir, name, priv); err != nil {
			return err
		}
	}
	return nil
}

// LoadPolicyDir builds a deploy Policy from a conventional key
// directory: signer.pub as the single required signer, log.pub as the
// log key and witness.pub as the single trusted witness, requiring
// minWitnesses countersignatures.
func LoadPolicyDir(dir string, minWitnesses int) (*Policy, error) {
	signer, err := LoadPublicKey(filepath.Join(dir, SignerKeyName+".pub"))
	if err != nil {
		return nil, err
	}
	logPub, err := LoadPublicKey(filepath.Join(dir, LogKeyName+".pub"))
	if err != nil {
		return nil, err
	}
	witness, err := LoadPublicKey(filepath.Join(dir, WitnessKeyName+".pub"))
	if err != nil {
		return nil, err
	}
	return &Policy{
		Signers:      []ed25519.PublicKey{signer},
		LogPub:       logPub,
		Witnesses:    []ed25519.PublicKey{witness},
		MinWitnesses: minWitnesses,
	}, nil
}
