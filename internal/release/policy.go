package release

import (
	"crypto/ed25519"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
)

// Bundle is everything a verifier needs next to an artifact to check
// its release: the signed envelope, the entry's position in the
// transparency log, the inclusion proof to the checkpoint root and the
// (witness-countersigned) checkpoint itself. A nil Checkpoint means
// the release was never logged — a Policy with a log key refuses it.
type Bundle struct {
	// Envelope is the signed release statement (the log leaf).
	Envelope Envelope `json:"envelope"`
	// LeafIndex is the envelope's position in the log.
	LeafIndex uint64 `json:"leaf_index"`
	// InclusionProof ties the leaf to Checkpoint.Root.
	InclusionProof []Hash `json:"inclusion_proof,omitempty"`
	// Checkpoint is the signed (and countersigned) tree head the proof
	// verifies against; nil for an unlogged release.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`
}

// EncodeBundle serializes a bundle to indented JSON (the .bundle.json
// file vedliot-pack writes next to an artifact).
func EncodeBundle(b *Bundle) ([]byte, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("release: encode bundle: %w", err)
	}
	return append(data, '\n'), nil
}

// DecodeBundle parses a bundle file.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("release: decode bundle: %w", err)
	}
	return &b, nil
}

// LoadBundle reads and parses a bundle file.
func LoadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("release: load bundle %s: %w", path, err)
	}
	return DecodeBundle(data)
}

// SaveBundle writes a bundle file.
func SaveBundle(path string, b *Bundle) error {
	data, err := EncodeBundle(b)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("release: save bundle %s: %w", path, err)
	}
	return nil
}

// Policy is the deploy-time trust configuration: which signer keys may
// release, which log must have logged the release, which witnesses
// count, and how many of them must have countersigned the checkpoint.
// The zero Policy is empty and verifies nothing; a non-empty Policy
// makes every requirement it states mandatory.
type Policy struct {
	// Signers are the release signing keys; a valid envelope signature
	// from any one of them satisfies the policy.
	Signers []ed25519.PublicKey
	// LogPub is the transparency log's checkpoint key; when set, the
	// bundle must carry a valid inclusion proof to a checkpoint signed
	// by it.
	LogPub ed25519.PublicKey
	// Witnesses are the countersignature keys the policy trusts.
	Witnesses []ed25519.PublicKey
	// MinWitnesses is how many distinct trusted witnesses must have
	// countersigned the checkpoint.
	MinWitnesses int
}

// Empty reports whether the policy states no requirements at all; an
// empty policy is the "no release gating" configuration.
func (p *Policy) Empty() bool {
	return p == nil || (len(p.Signers) == 0 && len(p.LogPub) == 0 && len(p.Witnesses) == 0 && p.MinWitnesses == 0)
}

// VerifyArtifact verifies a release bundle against the raw encoded
// artifact bytes: digest and size are derived from the data, then
// Verify runs.
func (p *Policy) VerifyArtifact(data []byte, b *Bundle) error {
	sum := sha256.Sum256(data)
	digest := fmt.Sprintf("sha256:%x", sum)
	if err := p.Verify(digest, b); err != nil {
		return err
	}
	if b.Envelope.ArtifactBytes != uint64(len(data)) {
		return fmt.Errorf("release: envelope declares %d artifact bytes, file has %d", b.Envelope.ArtifactBytes, len(data))
	}
	return nil
}

// Verify checks a release bundle for the artifact with the given
// content digest against every requirement the policy states:
//
//  1. the envelope names exactly this digest,
//  2. the envelope is signed by one of the policy's signer keys,
//  3. the envelope is included in the transparency log — a valid
//     inclusion proof from its leaf to a checkpoint signed by the
//     policy's log key,
//  4. the checkpoint carries valid countersignatures from at least
//     MinWitnesses distinct trusted witnesses.
//
// An empty policy verifies nothing and accepts (even a nil bundle):
// gating is opt-in.
func (p *Policy) Verify(artifactDigest string, b *Bundle) error {
	if p.Empty() {
		return nil
	}
	if b == nil {
		return fmt.Errorf("release: policy requires a release bundle, artifact %s has none", artifactDigest)
	}
	if subtle.ConstantTimeCompare([]byte(b.Envelope.ArtifactDigest), []byte(artifactDigest)) != 1 {
		return fmt.Errorf("release: envelope is for %s, not %s", b.Envelope.ArtifactDigest, artifactDigest)
	}
	if len(p.Signers) > 0 {
		signed := false
		for _, pub := range p.Signers {
			if b.Envelope.Verify(pub) == nil {
				signed = true
				break
			}
		}
		if !signed {
			return fmt.Errorf("release: envelope for %s is not signed by any policy signer", artifactDigest)
		}
	}
	if len(p.LogPub) > 0 {
		if b.Checkpoint == nil {
			return fmt.Errorf("release: %s is signed but not logged (no checkpoint in bundle)", artifactDigest)
		}
		if err := b.Checkpoint.VerifyLogSig(p.LogPub); err != nil {
			return err
		}
		leaf := LeafHash(b.Envelope.Encode())
		if err := VerifyInclusion(leaf, b.LeafIndex, b.Checkpoint.Size, b.InclusionProof, b.Checkpoint.Root); err != nil {
			return fmt.Errorf("release: %s not proven in log %q: %w", artifactDigest, b.Checkpoint.Origin, err)
		}
	}
	if p.MinWitnesses > 0 {
		if b.Checkpoint == nil {
			return fmt.Errorf("release: %s has no witnessed checkpoint", artifactDigest)
		}
		count := 0
		used := make(map[string]bool)
		for _, pub := range p.Witnesses {
			id := KeyID(pub)
			if used[id] {
				continue
			}
			for _, ws := range b.Checkpoint.Witness {
				if ws.KeyID == id && b.Checkpoint.VerifyWitnessSig(ws, pub) == nil {
					used[id] = true
					count++
					break
				}
			}
		}
		if count < p.MinWitnesses {
			return fmt.Errorf("release: checkpoint for %s has %d valid witness countersignature(s), policy requires %d",
				artifactDigest, count, p.MinWitnesses)
		}
	}
	return nil
}

// Publisher produces complete releases: it signs an artifact, appends
// the envelope to the transparency log, collects witness
// countersignatures on the new checkpoint and assembles the bundle a
// deploy policy verifies. The toolchain side of the release channel —
// kenning's ExportTarget and `vedliot-pack sign` both drive one.
type Publisher struct {
	// Signer signs release envelopes.
	Signer *Signer
	// Log is the transparency log releases are appended to.
	Log *Log
	// Witnesses countersign each new checkpoint. Publishing fails if
	// any of them refuses — a refusal means the log misbehaved.
	Witnesses []*Witness
	// Tool names the producer recorded in envelopes.
	Tool string
}

// Publish signs the encoded artifact bytes, logs the envelope and
// returns the verified release bundle.
func (p *Publisher) Publish(data []byte, model string) (*Bundle, error) {
	if p.Signer == nil || p.Log == nil {
		return nil, fmt.Errorf("release: publisher needs a signer and a log")
	}
	env := p.Signer.SignBytes(data, model, p.Tool)

	// Witnesses verify append-only-ness from their last seen head, so
	// capture those heads before the tree moves.
	prev := make([]uint64, len(p.Witnesses))
	for i, w := range p.Witnesses {
		if th, ok := w.Seen(p.Log.Origin()); ok {
			prev[i] = th.Size
		}
	}
	idx := p.Log.Append(env.Encode())
	cp, err := p.Log.Checkpoint()
	if err != nil {
		return nil, err
	}
	for i, w := range p.Witnesses {
		proof, err := p.Log.Consistency(prev[i], cp.Size)
		if err != nil {
			return nil, err
		}
		ws, err := w.Observe(cp, proof)
		if err != nil {
			return nil, fmt.Errorf("release: publish %s: %w", model, err)
		}
		cp.Witness = append(cp.Witness, ws)
	}
	incl, err := p.Log.Inclusion(idx, cp.Size)
	if err != nil {
		return nil, err
	}
	return &Bundle{Envelope: env, LeafIndex: idx, InclusionProof: incl, Checkpoint: &cp}, nil
}
