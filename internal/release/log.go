package release

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// checkpointDomain separates tree-head signatures; cosignDomain
// separates witness countersignatures from the log's own signature
// over the same body.
const (
	checkpointDomain = "vedliot-log-checkpoint/v1"
	cosignDomain     = "vedliot-witness-cosig/v1"
)

// Checkpoint is one signed tree head: the log's commitment that its
// first Size entries hash to Root. Witness countersignatures accumulate
// on it as witnesses verify consistency with what they saw before.
type Checkpoint struct {
	// Origin names the log instance the checkpoint belongs to.
	Origin string `json:"origin"`
	// Size is the number of entries the tree head covers.
	Size uint64 `json:"size"`
	// Root is the Merkle tree head over the first Size entries.
	Root Hash `json:"root"`
	// LogSig is the log key's signature over Body.
	LogSig []byte `json:"log_sig"`
	// Witness holds countersignatures from witnesses that verified this
	// checkpoint extends their previously seen tree head append-only.
	Witness []WitnessSig `json:"witness,omitempty"`
}

// WitnessSig is one witness countersignature over a checkpoint body.
type WitnessSig struct {
	// Name is the witness's human-readable identity.
	Name string `json:"name"`
	// KeyID identifies the witness public key (KeyID form).
	KeyID string `json:"key_id"`
	// Sig is the ed25519 signature over the cosign message.
	Sig []byte `json:"sig"`
}

// Body returns the canonical signed text of the tree head — origin,
// size and root hash, one per line — which both the log signature and
// every witness countersignature cover. Signatures are over the body
// only, so countersignatures from different witnesses commute.
func (c Checkpoint) Body() []byte {
	return []byte(fmt.Sprintf("%s\n%s\n%d\n%s\n", checkpointDomain, c.Origin, c.Size, c.Root))
}

// VerifyLogSig checks the tree-head signature against the log's public
// key.
func (c Checkpoint) VerifyLogSig(logPub ed25519.PublicKey) error {
	if len(logPub) != ed25519.PublicKeySize {
		return fmt.Errorf("release: bad log public key length %d", len(logPub))
	}
	if !ed25519.Verify(logPub, c.Body(), c.LogSig) {
		return fmt.Errorf("release: bad checkpoint signature for log %q", c.Origin)
	}
	return nil
}

// cosignMessage is the byte string a witness signs: the cosign domain
// prefix plus the checkpoint body.
func cosignMessage(body []byte) []byte {
	return append([]byte(cosignDomain+"\n"), body...)
}

// VerifyWitnessSig checks one countersignature over the checkpoint
// against a candidate witness public key.
func (c Checkpoint) VerifyWitnessSig(ws WitnessSig, pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("release: bad witness public key length %d", len(pub))
	}
	if !ed25519.Verify(pub, cosignMessage(c.Body()), ws.Sig) {
		return fmt.Errorf("release: bad witness countersignature from %q", ws.Name)
	}
	return nil
}

// Log is the append-only transparency log of release envelopes: a
// Merkle tree over canonical envelope encodings, with a signing key for
// tree-head checkpoints. Entries are retained so the log can serve
// inclusion and consistency proofs for any size up to the current one.
type Log struct {
	origin string
	priv   ed25519.PrivateKey // nil for a read-only (proof-serving) log

	mu      sync.Mutex
	entries [][]byte
	leaves  []Hash
}

// NewLog creates an empty log under the given origin name, signing
// checkpoints with priv. A nil priv makes a read-only log that can
// append and serve proofs but not sign checkpoints (the witness-side
// view of a log file).
func NewLog(origin string, priv ed25519.PrivateKey) *Log {
	return &Log{origin: origin, priv: priv}
}

// Origin returns the log's instance name.
func (l *Log) Origin() string { return l.origin }

// Public returns the log's checkpoint verification key, nil for a
// read-only log.
func (l *Log) Public() ed25519.PublicKey {
	if l.priv == nil {
		return nil
	}
	return l.priv.Public().(ed25519.PublicKey)
}

// Size returns the current entry count.
func (l *Log) Size() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// Append adds one encoded envelope to the log and returns its leaf
// index. The log never mutates or removes entries — append-only is the
// invariant every proof hangs off.
func (l *Log) Append(entry []byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp := append([]byte(nil), entry...)
	l.entries = append(l.entries, cp)
	l.leaves = append(l.leaves, LeafHash(cp))
	return uint64(len(l.entries) - 1)
}

// Entry returns the encoded envelope at index i (a copy).
func (l *Log) Entry(i uint64) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i >= uint64(len(l.entries)) {
		return nil, fmt.Errorf("release: log %q has no entry %d (size %d)", l.origin, i, len(l.entries))
	}
	return append([]byte(nil), l.entries[i]...), nil
}

// Root returns the tree head over the first size entries.
func (l *Log) Root(size uint64) (Hash, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if size > uint64(len(l.leaves)) {
		return Hash{}, fmt.Errorf("release: log %q has %d entries, no root at size %d", l.origin, len(l.leaves), size)
	}
	return rootOf(l.leaves[:size]), nil
}

// Checkpoint signs and returns the current tree head. The empty log
// checkpoints too (size 0, RFC 6962 empty root): a witness can be
// bootstrapped before the first release.
func (l *Log) Checkpoint() (Checkpoint, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.priv == nil {
		return Checkpoint{}, fmt.Errorf("release: log %q is read-only (no signing key)", l.origin)
	}
	c := Checkpoint{Origin: l.origin, Size: uint64(len(l.leaves)), Root: rootOf(l.leaves)}
	c.LogSig = ed25519.Sign(l.priv, c.Body())
	return c, nil
}

// Inclusion builds the proof that entry index is included in the tree
// of the given size.
func (l *Log) Inclusion(index, size uint64) ([]Hash, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if size > uint64(len(l.leaves)) {
		return nil, fmt.Errorf("release: log %q has %d entries, no tree of size %d", l.origin, len(l.leaves), size)
	}
	if index >= size {
		return nil, fmt.Errorf("release: entry %d outside tree of size %d", index, size)
	}
	return inclusionPath(l.leaves[:size], index), nil
}

// Consistency builds the proof that the tree of oldSize entries is a
// prefix of the tree of newSize entries.
func (l *Log) Consistency(oldSize, newSize uint64) ([]Hash, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if newSize > uint64(len(l.leaves)) {
		return nil, fmt.Errorf("release: log %q has %d entries, no tree of size %d", l.origin, len(l.leaves), newSize)
	}
	if oldSize > newSize {
		return nil, fmt.Errorf("release: inconsistent sizes %d -> %d", oldSize, newSize)
	}
	if oldSize == 0 || oldSize == newSize {
		return nil, nil
	}
	return consistencyPath(l.leaves[:newSize], oldSize), nil
}

// logFile is the on-disk JSON form of a log: origin plus raw entries.
// Leaf hashes are recomputed on load, so a tampered entry changes the
// reconstructed roots and every previously issued proof stops
// verifying — tamper detection falls out of the tree itself.
type logFile struct {
	Origin  string   `json:"origin"`
	Entries [][]byte `json:"entries"`
}

// OpenLogFile loads a file-backed log, creating an empty one when the
// file does not exist. priv may be nil for read-only use.
func OpenLogFile(path, origin string, priv ed25519.PrivateKey) (*Log, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return NewLog(origin, priv), nil
	}
	if err != nil {
		return nil, fmt.Errorf("release: open log %s: %w", path, err)
	}
	var lf logFile
	if err := json.Unmarshal(data, &lf); err != nil {
		return nil, fmt.Errorf("release: parse log %s: %w", path, err)
	}
	if lf.Origin == "" {
		return nil, fmt.Errorf("release: log %s has no origin", path)
	}
	l := NewLog(lf.Origin, priv)
	for _, e := range lf.Entries {
		l.Append(e)
	}
	return l, nil
}

// SaveLogFile writes the log's entries back to disk.
func SaveLogFile(path string, l *Log) error {
	l.mu.Lock()
	lf := logFile{Origin: l.origin, Entries: l.entries}
	data, err := json.MarshalIndent(lf, "", "  ")
	l.mu.Unlock()
	if err != nil {
		return fmt.Errorf("release: encode log: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("release: save log %s: %w", path, err)
	}
	return nil
}

// GenerateLogKey creates a fresh checkpoint-signing key pair.
func GenerateLogKey() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("release: generate log key: %w", err)
	}
	return pub, priv, nil
}
