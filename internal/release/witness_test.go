package release

import (
	"crypto/ed25519"
	"path/filepath"
	"testing"
)

// grow appends n entries and returns the freshly signed checkpoint
// plus the consistency proof from oldSize.
func grow(t *testing.T, l *Log, n int, oldSize uint64) (Checkpoint, []Hash) {
	t.Helper()
	for i := 0; i < n; i++ {
		l.Append([]byte{byte(l.Size())})
	}
	cp, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	proof, err := l.Consistency(oldSize, cp.Size)
	if err != nil {
		t.Fatal(err)
	}
	return cp, proof
}

func TestWitnessFollowsHonestLog(t *testing.T) {
	l := newTestLog(t, "test/honest")
	w, err := GenerateWitness("w0", l.Public())
	if err != nil {
		t.Fatal(err)
	}
	// First observation is trust-on-first-use; growth sizes cross
	// non-power-of-two boundaries on purpose.
	var seen uint64
	for _, n := range []int{1, 2, 4, 3} {
		cp, proof := grow(t, l, n, seen)
		ws, err := w.Observe(cp, proof)
		if err != nil {
			t.Fatalf("honest growth to %d refused: %v", cp.Size, err)
		}
		if err := cp.VerifyWitnessSig(ws, w.Public()); err != nil {
			t.Fatal(err)
		}
		seen = cp.Size
	}
	if th, ok := w.Seen("test/honest"); !ok || th.Size != 10 {
		t.Fatalf("witness head = %+v, want size 10", th)
	}
}

func TestWitnessRefusesNonAppendOnlyCheckpoint(t *testing.T) {
	l := newTestLog(t, "test/fork")
	w, err := GenerateWitness("w0", l.Public())
	if err != nil {
		t.Fatal(err)
	}
	cp, proof := grow(t, l, 3, 0)
	if _, err := w.Observe(cp, proof); err != nil {
		t.Fatal(err)
	}

	// A fork: same signing key, same size, different entries. The
	// consistency proof from the fork cannot reconstruct the witness's
	// remembered root.
	fork := NewLog("test/fork", nil)
	fork.Append([]byte{0})
	fork.Append([]byte{99}) // diverges here
	fork.Append([]byte{2})
	fork.Append([]byte{3})
	forkRoot, err := fork.Root(4)
	if err != nil {
		t.Fatal(err)
	}
	forkCP := Checkpoint{Origin: "test/fork", Size: 4, Root: forkRoot}
	forkCP.LogSig = signCheckpoint(t, l, forkCP)
	forkProof, err := fork.Consistency(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Observe(forkCP, forkProof); err == nil {
		t.Fatal("witness countersigned a forked log")
	}
	// The refused checkpoint must not move the witness head.
	if th, _ := w.Seen("test/fork"); th.Size != 3 {
		t.Fatalf("refusal moved the witness head to %d", th.Size)
	}

	// A shrinking log is refused outright.
	shrunk := Checkpoint{Origin: "test/fork", Size: 2, Root: forkRoot}
	shrunk.LogSig = signCheckpoint(t, l, shrunk)
	if _, err := w.Observe(shrunk, nil); err == nil {
		t.Fatal("witness countersigned a shrinking log")
	}

	// An equal-size checkpoint with a diverged root is a fork too.
	split := Checkpoint{Origin: "test/fork", Size: 3, Root: forkRoot}
	split.LogSig = signCheckpoint(t, l, split)
	if _, err := w.Observe(split, nil); err == nil {
		t.Fatal("witness countersigned an equal-size fork")
	}
}

// signCheckpoint signs an arbitrary (possibly dishonest) tree head with
// the log's key — the attacker model where the log key itself colludes.
func signCheckpoint(t *testing.T, l *Log, cp Checkpoint) []byte {
	t.Helper()
	if l.priv == nil {
		t.Fatal("log has no signing key")
	}
	return ed25519.Sign(l.priv, cp.Body())
}

func TestWitnessRefusesForeignLogKey(t *testing.T) {
	l := newTestLog(t, "test/key")
	rogue := newTestLog(t, "test/key")
	w, err := GenerateWitness("w0", l.Public())
	if err != nil {
		t.Fatal(err)
	}
	rogue.Append([]byte("x"))
	cp, err := rogue.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Observe(cp, nil); err == nil {
		t.Fatal("witness accepted a checkpoint signed by a foreign key")
	}
}

func TestWitnessStatePersistsAcrossRestarts(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "witness.json")
	l := newTestLog(t, "test/persist")
	w, err := GenerateWitness("w0", l.Public())
	if err != nil {
		t.Fatal(err)
	}
	cp, proof := grow(t, l, 3, 0)
	if _, err := w.Observe(cp, proof); err != nil {
		t.Fatal(err)
	}
	if err := SaveWitnessState(state, w); err != nil {
		t.Fatal(err)
	}

	// A restarted witness (fresh key is fine — the state is about tree
	// heads, not identity) restores its memory and still detects forks.
	w2, err := GenerateWitness("w0", l.Public())
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadWitnessState(state, w2); err != nil {
		t.Fatal(err)
	}
	th, ok := w2.Seen("test/persist")
	if !ok || th.Size != 3 {
		t.Fatalf("restored head = %+v, want size 3", th)
	}
	fork := Checkpoint{Origin: "test/persist", Size: 3, Root: LeafHash([]byte("not the root"))}
	fork.LogSig = signCheckpoint(t, l, fork)
	if _, err := w2.Observe(fork, nil); err == nil {
		t.Fatal("restored witness countersigned a fork")
	}
	// Missing state file is a fresh (TOFU) witness, not an error.
	if err := LoadWitnessState(filepath.Join(dir, "absent.json"), w2); err != nil {
		t.Fatal(err)
	}
}
