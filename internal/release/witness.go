package release

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Witness is an independent log observer: it remembers the last tree
// head it saw per log origin and countersigns a new checkpoint only
// after verifying the log signature and an append-only consistency
// proof from the remembered head. A log that forks — presents two
// different trees of the same size, or rewrites history — cannot get a
// countersignature from any witness that saw the other view, which is
// the whole point: deploy policies requiring witnessed checkpoints make
// split-view attacks detectable.
type Witness struct {
	name   string
	priv   ed25519.PrivateKey
	logPub ed25519.PublicKey

	mu   sync.Mutex
	seen map[string]TreeHead
}

// TreeHead is the (size, root) pair a witness remembers per log.
type TreeHead struct {
	// Size is the entry count of the remembered tree head.
	Size uint64 `json:"size"`
	// Root is its Merkle root.
	Root Hash `json:"root"`
}

// NewWitness creates a witness with its own countersigning key,
// trusting checkpoints signed by logPub.
func NewWitness(name string, priv ed25519.PrivateKey, logPub ed25519.PublicKey) (*Witness, error) {
	if len(priv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("release: bad witness private key length %d", len(priv))
	}
	if len(logPub) != ed25519.PublicKeySize {
		return nil, fmt.Errorf("release: bad log public key length %d", len(logPub))
	}
	return &Witness{name: name, priv: priv, logPub: logPub, seen: make(map[string]TreeHead)}, nil
}

// GenerateWitness creates a witness with a fresh key pair.
func GenerateWitness(name string, logPub ed25519.PublicKey) (*Witness, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("release: generate witness key: %w", err)
	}
	return NewWitness(name, priv, logPub)
}

// Name returns the witness identity.
func (w *Witness) Name() string { return w.name }

// Public returns the witness countersignature verification key.
func (w *Witness) Public() ed25519.PublicKey {
	return w.priv.Public().(ed25519.PublicKey)
}

// Seen returns the last tree head the witness recorded for a log
// origin.
func (w *Witness) Seen(origin string) (TreeHead, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	th, ok := w.seen[origin]
	return th, ok
}

// Observe verifies a checkpoint and countersigns it. The consistency
// proof must show the checkpoint's tree extends the witness's last
// recorded head for that origin append-only; the first observation of
// an origin is trust-on-first-use. On success the new head is recorded
// and the countersignature returned; on any failure nothing is
// recorded and no signature is produced — a witness never endorses a
// shrinking or forked log.
func (w *Witness) Observe(cp Checkpoint, consistency []Hash) (WitnessSig, error) {
	if err := cp.VerifyLogSig(w.logPub); err != nil {
		return WitnessSig{}, fmt.Errorf("release: witness %s: %w", w.name, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if prev, ok := w.seen[cp.Origin]; ok {
		if cp.Size < prev.Size {
			return WitnessSig{}, fmt.Errorf("release: witness %s: log %q shrank from %d to %d entries",
				w.name, cp.Origin, prev.Size, cp.Size)
		}
		if err := VerifyConsistency(prev.Size, prev.Root, cp.Size, cp.Root, consistency); err != nil {
			return WitnessSig{}, fmt.Errorf("release: witness %s: log %q not append-only: %w", w.name, cp.Origin, err)
		}
	}
	w.seen[cp.Origin] = TreeHead{Size: cp.Size, Root: cp.Root}
	return WitnessSig{
		Name:  w.name,
		KeyID: KeyID(w.Public()),
		Sig:   ed25519.Sign(w.priv, cosignMessage(cp.Body())),
	}, nil
}

// witnessState is the on-disk JSON form of a witness's memory: the
// last tree head per origin.
type witnessState struct {
	Seen map[string]TreeHead `json:"seen"`
}

// LoadWitnessState restores a witness's remembered tree heads from a
// state file; a missing file leaves the witness fresh (TOFU).
func LoadWitnessState(path string, w *Witness) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("release: open witness state %s: %w", path, err)
	}
	var st witnessState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("release: parse witness state %s: %w", path, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for origin, th := range st.Seen {
		w.seen[origin] = th
	}
	return nil
}

// SaveWitnessState writes the witness's remembered tree heads to a
// state file.
func SaveWitnessState(path string, w *Witness) error {
	w.mu.Lock()
	st := witnessState{Seen: w.seen}
	data, err := json.MarshalIndent(st, "", "  ")
	w.mu.Unlock()
	if err != nil {
		return fmt.Errorf("release: encode witness state: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("release: save witness state %s: %w", path, err)
	}
	return nil
}
