package release

import (
	"crypto/ed25519"
	"crypto/sha256"
	"fmt"
	"path/filepath"
	"testing"
)

// testChannel is a complete release channel: signer, log, one witness,
// and the policy trusting exactly them.
type testChannel struct {
	signer  *Signer
	log     *Log
	witness *Witness
	policy  *Policy
	pub     *Publisher
}

func newTestChannel(t *testing.T) *testChannel {
	t.Helper()
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	l := newTestLog(t, "test/releases")
	w, err := GenerateWitness("w0", l.Public())
	if err != nil {
		t.Fatal(err)
	}
	return &testChannel{
		signer:  s,
		log:     l,
		witness: w,
		policy: &Policy{
			Signers:      []ed25519.PublicKey{s.Public()},
			LogPub:       l.Public(),
			Witnesses:    []ed25519.PublicKey{w.Public()},
			MinWitnesses: 1,
		},
		pub: &Publisher{Signer: s, Log: l, Witnesses: []*Witness{w}, Tool: "test"},
	}
}

func digestOf(data []byte) string {
	sum := sha256.Sum256(data)
	return fmt.Sprintf("sha256:%x", sum)
}

func TestPublishThenVerify(t *testing.T) {
	ch := newTestChannel(t)
	art := []byte("pretend artifact bytes")
	b, err := ch.pub.Publish(art, "mirror-face")
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.policy.VerifyArtifact(art, b); err != nil {
		t.Fatal(err)
	}
	if b.Envelope.Model != "mirror-face" || b.Envelope.Tool != "test" {
		t.Fatalf("envelope metadata %+v", b.Envelope)
	}
	// Later releases keep earlier bundles verifiable (proofs are bound
	// to their own checkpoint, not the moving head).
	if _, err := ch.pub.Publish([]byte("second artifact"), "motor"); err != nil {
		t.Fatal(err)
	}
	if err := ch.policy.VerifyArtifact(art, b); err != nil {
		t.Fatalf("earlier bundle stopped verifying: %v", err)
	}
}

func TestPolicyRefusesUnsigned(t *testing.T) {
	ch := newTestChannel(t)
	art := []byte("artifact")
	// No bundle at all.
	if err := ch.policy.Verify(digestOf(art), nil); err == nil {
		t.Fatal("nil bundle accepted")
	}
	// A bundle signed by a key outside the policy.
	rogue, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	roguePub := &Publisher{Signer: rogue, Log: ch.log, Witnesses: []*Witness{ch.witness}, Tool: "rogue"}
	b, err := roguePub.Publish(art, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.policy.VerifyArtifact(art, b); err == nil {
		t.Fatal("rogue-signed bundle accepted")
	}
	// A tampered envelope signature.
	good, err := ch.pub.Publish(art, "m2")
	if err != nil {
		t.Fatal(err)
	}
	good.Envelope.Sig[0] ^= 1
	if err := ch.policy.VerifyArtifact(art, good); err == nil {
		t.Fatal("bit-flipped signature accepted")
	}
}

func TestPolicyRefusesSignedButUnlogged(t *testing.T) {
	ch := newTestChannel(t)
	art := []byte("artifact")
	env := ch.signer.SignBytes(art, "m", "test")
	b := &Bundle{Envelope: env} // valid signature, no checkpoint
	err := ch.policy.VerifyArtifact(art, b)
	if err == nil {
		t.Fatal("signed-but-unlogged bundle accepted")
	}
	// And a bundle whose inclusion proof is for a different leaf.
	logged, err := ch.pub.Publish([]byte("other artifact"), "other")
	if err != nil {
		t.Fatal(err)
	}
	swapped := &Bundle{
		Envelope:       env,
		LeafIndex:      logged.LeafIndex,
		InclusionProof: logged.InclusionProof,
		Checkpoint:     logged.Checkpoint,
	}
	if err := ch.policy.VerifyArtifact(art, swapped); err == nil {
		t.Fatal("bundle with a foreign inclusion proof accepted")
	}
}

func TestPolicyRefusesUnwitnessedCheckpoint(t *testing.T) {
	ch := newTestChannel(t)
	art := []byte("artifact")
	b, err := ch.pub.Publish(art, "m")
	if err != nil {
		t.Fatal(err)
	}
	// Strip the countersignatures: log inclusion still verifies, the
	// witness quorum does not.
	stripped := *b.Checkpoint
	stripped.Witness = nil
	b2 := &Bundle{Envelope: b.Envelope, LeafIndex: b.LeafIndex, InclusionProof: b.InclusionProof, Checkpoint: &stripped}
	if err := ch.policy.VerifyArtifact(art, b2); err == nil {
		t.Fatal("unwitnessed checkpoint accepted")
	}
	// A countersignature from a witness outside the policy doesn't count.
	outsider, err := GenerateWitness("outsider", ch.log.Public())
	if err != nil {
		t.Fatal(err)
	}
	ws, err := outsider.Observe(stripped, nil)
	if err != nil {
		t.Fatal(err)
	}
	stripped.Witness = []WitnessSig{ws}
	if err := ch.policy.VerifyArtifact(art, b2); err == nil {
		t.Fatal("outsider countersignature satisfied the quorum")
	}
	// Asking for more witnesses than exist refuses too.
	strict := *ch.policy
	strict.MinWitnesses = 2
	if err := strict.VerifyArtifact(art, b); err == nil {
		t.Fatal("quorum of 2 satisfied by 1 witness")
	}
}

func TestPolicyRefusesWrongArtifact(t *testing.T) {
	ch := newTestChannel(t)
	art := []byte("artifact v1")
	b, err := ch.pub.Publish(art, "m")
	if err != nil {
		t.Fatal(err)
	}
	// The classic supply-chain swap: valid bundle, different bytes.
	if err := ch.policy.VerifyArtifact([]byte("artifact v2"), b); err == nil {
		t.Fatal("bundle verified a different artifact")
	}
	// Size mismatch with a forged digest match is impossible, but the
	// declared-size check still guards truncation-style confusion.
	b.Envelope.ArtifactBytes++
	if err := ch.policy.VerifyArtifact(art, b); err == nil {
		t.Fatal("size-mismatched envelope accepted")
	}
}

func TestEmptyPolicyAcceptsEverything(t *testing.T) {
	var p *Policy
	if !p.Empty() {
		t.Fatal("nil policy not empty")
	}
	if err := p.Verify("sha256:anything", nil); err != nil {
		t.Fatal(err)
	}
	zero := &Policy{}
	if !zero.Empty() {
		t.Fatal("zero policy not empty")
	}
}

func TestPublisherFailsWhenWitnessRefuses(t *testing.T) {
	ch := newTestChannel(t)
	if _, err := ch.pub.Publish([]byte("a"), "m"); err != nil {
		t.Fatal(err)
	}
	// Poison the witness's memory to simulate it having seen a
	// different (forked) view of this log: publishing must now fail
	// instead of shipping an unwitnessed checkpoint.
	ch.witness.mu.Lock()
	ch.witness.seen[ch.log.Origin()] = TreeHead{Size: 1, Root: LeafHash([]byte("other view"))}
	ch.witness.mu.Unlock()
	if _, err := ch.pub.Publish([]byte("b"), "m2"); err == nil {
		t.Fatal("publish succeeded against a refusing witness")
	}
}

func TestKeyDirAndPolicyDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := GenerateKeyDir(dir); err != nil {
		t.Fatal(err)
	}
	// Private keys load and re-derive the saved public halves.
	for _, name := range []string{SignerKeyName, LogKeyName, WitnessKeyName} {
		priv, err := LoadPrivateKey(filepath.Join(dir, name+".key"))
		if err != nil {
			t.Fatal(err)
		}
		pub, err := LoadPublicKey(filepath.Join(dir, name+".pub"))
		if err != nil {
			t.Fatal(err)
		}
		if !pub.Equal(priv.Public()) {
			t.Fatalf("%s: saved public key does not match private key", name)
		}
	}
	p, err := LoadPolicyDir(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Empty() || len(p.Signers) != 1 || p.MinWitnesses != 1 {
		t.Fatalf("policy %+v", p)
	}
	// The loaded policy verifies a channel built from the same keys.
	signer, err := NewSignerFromKey(mustLoadKey(t, dir, SignerKeyName))
	if err != nil {
		t.Fatal(err)
	}
	l := NewLog("test/dir", mustLoadKey(t, dir, LogKeyName))
	w, err := NewWitness("w0", mustLoadKey(t, dir, WitnessKeyName), l.Public())
	if err != nil {
		t.Fatal(err)
	}
	pubr := &Publisher{Signer: signer, Log: l, Witnesses: []*Witness{w}, Tool: "test"}
	art := []byte("artifact")
	b, err := pubr.Publish(art, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.VerifyArtifact(art, b); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPolicyDir(filepath.Join(dir, "absent"), 1); err == nil {
		t.Error("missing key dir accepted")
	}
}

func mustLoadKey(t *testing.T, dir, name string) ed25519.PrivateKey {
	t.Helper()
	priv, err := LoadPrivateKey(filepath.Join(dir, name+".key"))
	if err != nil {
		t.Fatal(err)
	}
	return priv
}

func TestBundleFileRoundTrip(t *testing.T) {
	ch := newTestChannel(t)
	art := []byte("artifact")
	b, err := ch.pub.Publish(art, "m")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.bundle.json")
	if err := SaveBundle(path, b); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.policy.VerifyArtifact(art, back); err != nil {
		t.Fatalf("bundle stopped verifying after a file round trip: %v", err)
	}
}
