package release

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// newTestLog returns a signing log and its public key.
func newTestLog(t *testing.T, origin string) *Log {
	t.Helper()
	_, priv, err := GenerateLogKey()
	if err != nil {
		t.Fatal(err)
	}
	return NewLog(origin, priv)
}

func TestEmptyLogCheckpoint(t *testing.T) {
	// A witness can be bootstrapped before the first release: the empty
	// log signs a size-0 checkpoint over the RFC 6962 empty root.
	l := newTestLog(t, "test/empty")
	cp, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Size != 0 {
		t.Fatalf("empty checkpoint size %d", cp.Size)
	}
	if cp.Root != emptyRoot() {
		t.Fatal("empty checkpoint root is not the empty-tree hash")
	}
	if err := cp.VerifyLogSig(l.Public()); err != nil {
		t.Fatal(err)
	}
	// And any later tree is consistent with it (empty proof).
	l.Append([]byte("first"))
	cp2, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsistency(0, cp.Root, cp2.Size, cp2.Root, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointSignatureBindsTreeHead(t *testing.T) {
	l := newTestLog(t, "test/bind")
	l.Append([]byte("a"))
	cp, err := l.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	forged := cp
	forged.Size = 99
	if err := forged.VerifyLogSig(l.Public()); err == nil {
		t.Error("size-rewritten checkpoint verified")
	}
	forged = cp
	forged.Root[0] ^= 1
	if err := forged.VerifyLogSig(l.Public()); err == nil {
		t.Error("root-rewritten checkpoint verified")
	}
	forged = cp
	forged.Origin = "test/other"
	if err := forged.VerifyLogSig(l.Public()); err == nil {
		t.Error("origin-rewritten checkpoint verified")
	}
}

func TestLogProofsAtHistoricalSizes(t *testing.T) {
	l := newTestLog(t, "test/hist")
	for i := 0; i < 9; i++ {
		l.Append([]byte{byte(i)})
	}
	// Inclusion of entry 2 in the historical size-5 tree.
	proof, err := l.Inclusion(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	root5, err := l.Root(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInclusion(LeafHash([]byte{2}), 2, 5, proof, root5); err != nil {
		t.Fatal(err)
	}
	// Consistency between two historical sizes.
	cons, err := l.Consistency(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	root9, err := l.Root(9)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyConsistency(5, root5, 9, root9, cons); err != nil {
		t.Fatal(err)
	}
	// Out-of-range requests fail loudly.
	if _, err := l.Inclusion(9, 9); err == nil {
		t.Error("inclusion past the end accepted")
	}
	if _, err := l.Root(10); err == nil {
		t.Error("root past the end accepted")
	}
	if _, err := l.Consistency(3, 10); err == nil {
		t.Error("consistency past the end accepted")
	}
}

func TestLogFileRoundTripAndTamperDetection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.json")
	_, priv, err := GenerateLogKey()
	if err != nil {
		t.Fatal(err)
	}

	l, err := OpenLogFile(path, "test/file", priv)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 0 {
		t.Fatalf("fresh file-backed log has %d entries", l.Size())
	}
	l.Append([]byte(`{"entry":1}`))
	l.Append([]byte(`{"entry":2}`))
	wantRoot, err := l.Root(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveLogFile(path, l); err != nil {
		t.Fatal(err)
	}

	// Reload (read-only: no signing key) and compare roots — the
	// deterministic-encoding round trip for the log itself.
	back, err := OpenLogFile(path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.Origin() != "test/file" {
		t.Fatalf("origin %q after reload", back.Origin())
	}
	gotRoot, err := back.Root(2)
	if err != nil {
		t.Fatal(err)
	}
	if gotRoot != wantRoot {
		t.Fatal("reloaded log reconstructs a different root")
	}
	if back.Public() != nil {
		t.Error("read-only log reports a public key")
	}
	if _, err := back.Checkpoint(); err == nil {
		t.Error("read-only log signed a checkpoint")
	}
	entry, err := back.Entry(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(entry, []byte(`{"entry":1}`)) {
		t.Fatal("entry drifted through the file round trip")
	}

	// Tampered leaf detection: rewriting an entry on disk changes the
	// reconstructed root, so every issued proof stops verifying.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var lf logFile
	if err := json.Unmarshal(data, &lf); err != nil {
		t.Fatal(err)
	}
	lf.Entries[0][0] ^= 1
	tampered, err := json.Marshal(lf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	forked, err := OpenLogFile(path, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	forkRoot, err := forked.Root(2)
	if err != nil {
		t.Fatal(err)
	}
	if forkRoot == wantRoot {
		t.Fatal("tampered entry not reflected in the root")
	}
}

func TestEnvelopeDeterministicRoundTrip(t *testing.T) {
	// The log-entry encoding must round-trip deterministically:
	// decode(encode(e)) re-encodes to the identical bytes, so leaf
	// hashes are reproducible from parsed entries.
	s, err := NewSigner()
	if err != nil {
		t.Fatal(err)
	}
	e := s.Sign("sha256:00ff", 42, "mirror-face", "test")
	enc := e.Encode()
	back, err := DecodeEnvelope(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Encode(), enc) {
		t.Fatal("envelope encoding not deterministic across a round trip")
	}
	if LeafHash(back.Encode()) != LeafHash(enc) {
		t.Fatal("leaf hash not reproducible from the parsed entry")
	}
	// Non-canonical bytes (extra whitespace) are rejected outright.
	if _, err := DecodeEnvelope(append([]byte(" "), enc...)); err == nil {
		t.Error("non-canonical envelope accepted")
	}
	// Unknown version rejected.
	bad := s.Sign("sha256:00", 1, "m", "t")
	bad.Version = 99
	if _, err := DecodeEnvelope(bad.Encode()); err == nil {
		t.Error("future envelope version accepted")
	}
}
