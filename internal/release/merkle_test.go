package release

import (
	"fmt"
	"testing"
)

// testLeaves builds n distinct leaf hashes.
func testLeaves(n int) []Hash {
	leaves := make([]Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("entry-%d", i)))
	}
	return leaves
}

func TestLeafAndNodeDomainSeparation(t *testing.T) {
	// A leaf hash of (l || r) must not equal the node hash of (l, r):
	// the 0x00/0x01 prefixes keep second-preimage tricks out.
	l, r := LeafHash([]byte("a")), LeafHash([]byte("b"))
	var concat []byte
	concat = append(concat, l[:]...)
	concat = append(concat, r[:]...)
	if LeafHash(concat) == nodeHash(l, r) {
		t.Fatal("leaf and node hashing not domain-separated")
	}
}

func TestInclusionAllIndicesAllSizes(t *testing.T) {
	// Every leaf of every tree size up to 20 (non-powers of two
	// included) must prove into the root, and into no other root.
	leaves := testLeaves(20)
	for size := 1; size <= len(leaves); size++ {
		root := rootOf(leaves[:size])
		for i := 0; i < size; i++ {
			proof := inclusionPath(leaves[:size], uint64(i))
			if err := VerifyInclusion(leaves[i], uint64(i), uint64(size), proof, root); err != nil {
				t.Fatalf("size %d index %d: %v", size, i, err)
			}
			// The same proof must not verify a different leaf.
			if err := VerifyInclusion(LeafHash([]byte("evil")), uint64(i), uint64(size), proof, root); err == nil {
				t.Fatalf("size %d index %d: foreign leaf verified", size, i)
			}
		}
	}
}

func TestSingleLeafInclusionProof(t *testing.T) {
	// A one-entry tree: the leaf is the root and the proof is empty.
	leaves := testLeaves(1)
	proof := inclusionPath(leaves, 0)
	if len(proof) != 0 {
		t.Fatalf("single-leaf proof has %d elements, want 0", len(proof))
	}
	if err := VerifyInclusion(leaves[0], 0, 1, proof, rootOf(leaves)); err != nil {
		t.Fatal(err)
	}
	if err := VerifyInclusion(leaves[0], 0, 1, proof, LeafHash([]byte("other"))); err == nil {
		t.Fatal("single-leaf proof verified against a wrong root")
	}
}

func TestInclusionRejectsOutOfRangeAndTruncatedProofs(t *testing.T) {
	leaves := testLeaves(7)
	root := rootOf(leaves)
	proof := inclusionPath(leaves, 3)
	if err := VerifyInclusion(leaves[3], 7, 7, proof, root); err == nil {
		t.Error("index == size accepted")
	}
	if err := VerifyInclusion(leaves[3], 3, 7, proof[:1], root); err == nil {
		t.Error("truncated proof accepted")
	}
	if err := VerifyInclusion(leaves[3], 3, 7, append(append([]Hash{}, proof...), Hash{}), root); err == nil {
		t.Error("padded proof accepted")
	}
}

func TestConsistencyAllSizePairs(t *testing.T) {
	// Consistency must hold for every (old, new) pair up to 20 leaves —
	// the non-power-of-two boundaries are where the subproof recursion
	// earns its keep.
	leaves := testLeaves(20)
	for oldSize := 0; oldSize <= len(leaves); oldSize++ {
		oldRoot := rootOf(leaves[:oldSize])
		for newSize := oldSize; newSize <= len(leaves); newSize++ {
			newRoot := rootOf(leaves[:newSize])
			var proof []Hash
			if oldSize > 0 && oldSize < newSize {
				proof = consistencyPath(leaves[:newSize], uint64(oldSize))
			}
			if err := VerifyConsistency(uint64(oldSize), oldRoot, uint64(newSize), newRoot, proof); err != nil {
				t.Fatalf("consistency %d -> %d: %v", oldSize, newSize, err)
			}
		}
	}
}

func TestConsistencyDetectsRewrittenHistory(t *testing.T) {
	// A "log" that rewrites an old entry while growing must fail the
	// append-only check from the honest old head.
	honest := testLeaves(5)
	oldRoot := rootOf(honest[:3])

	forked := testLeaves(5)
	forked[1] = LeafHash([]byte("rewritten"))
	forkRoot := rootOf(forked)
	forkProof := consistencyPath(forked, 3)
	if err := VerifyConsistency(3, oldRoot, 5, forkRoot, forkProof); err == nil {
		t.Fatal("rewritten history passed the consistency check")
	}

	// Equal-size fork: same size, different root, no proof can help.
	if err := VerifyConsistency(5, rootOf(honest), 5, forkRoot, nil); err == nil {
		t.Fatal("equal-size fork passed the consistency check")
	}
}

func TestConsistencyRejectsShrinkingTree(t *testing.T) {
	leaves := testLeaves(6)
	if err := VerifyConsistency(6, rootOf(leaves), 4, rootOf(leaves[:4]), nil); err == nil {
		t.Fatal("shrinking tree accepted")
	}
}

func TestHashJSONRoundTrip(t *testing.T) {
	h := LeafHash([]byte("x"))
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Hash
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("hash JSON round trip drifted")
	}
	if _, err := ParseHash("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParseHash("abcd"); err == nil {
		t.Error("short hash accepted")
	}
}
