package release

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// merkle.go is the hash-tree substrate of the transparency log: an
// RFC 6962/9162-style Merkle tree over release entries, with inclusion
// proofs (one entry is in the tree a checkpoint commits to) and
// consistency proofs (a later tree extends an earlier one append-only,
// the property the witness enforces). Domain-separated hashing — 0x00
// before leaves, 0x01 before interior nodes — keeps a leaf from ever
// colliding with an interior node.

// Hash is one SHA-256 tree hash. It marshals to lowercase hex in JSON
// so proofs and checkpoints stay human-auditable in bundle files.
type Hash [32]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// MarshalJSON encodes the hash as a hex string.
func (h Hash) MarshalJSON() ([]byte, error) { return json.Marshal(h.String()) }

// UnmarshalJSON decodes a hex string of exactly 32 bytes.
func (h *Hash) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	return h.fromHex(s)
}

func (h *Hash) fromHex(s string) error {
	b, err := hex.DecodeString(s)
	if err != nil {
		return fmt.Errorf("release: bad hash hex: %w", err)
	}
	if len(b) != len(h) {
		return fmt.Errorf("release: hash is %d bytes, want %d", len(b), len(h))
	}
	copy(h[:], b)
	return nil
}

// ParseHash parses a lowercase-hex tree hash (the String form).
func ParseHash(s string) (Hash, error) {
	var h Hash
	err := h.fromHex(s)
	return h, err
}

// LeafHash computes the domain-separated hash of one log entry:
// SHA-256(0x00 || entry).
func LeafHash(entry []byte) Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(entry)
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// nodeHash combines two subtree hashes: SHA-256(0x01 || left || right).
func nodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// emptyRoot is the root of the zero-entry tree: SHA-256 of the empty
// string, per RFC 6962.
func emptyRoot() Hash {
	var out Hash
	copy(out[:], sha256.New().Sum(nil))
	return out
}

// splitPoint returns the largest power of two strictly less than n;
// the left-subtree width of an n-leaf RFC 6962 tree (n >= 2).
func splitPoint(n uint64) uint64 {
	k := uint64(1)
	for k*2 < n {
		k *= 2
	}
	return k
}

// rootOf computes the Merkle tree head over the given leaf hashes.
func rootOf(leaves []Hash) Hash {
	switch len(leaves) {
	case 0:
		return emptyRoot()
	case 1:
		return leaves[0]
	default:
		k := splitPoint(uint64(len(leaves)))
		return nodeHash(rootOf(leaves[:k]), rootOf(leaves[k:]))
	}
}

// inclusionPath builds the audit path proving leaves[index] is in the
// tree over leaves (RFC 9162 §2.1.3.1): sibling subtree roots from the
// leaf up.
func inclusionPath(leaves []Hash, index uint64) []Hash {
	if len(leaves) <= 1 {
		return nil
	}
	k := splitPoint(uint64(len(leaves)))
	if index < k {
		return append(inclusionPath(leaves[:k], index), rootOf(leaves[k:]))
	}
	return append(inclusionPath(leaves[k:], index-k), rootOf(leaves[:k]))
}

// VerifyInclusion checks that the entry with the given leaf hash sits
// at index in the size-entry tree committed to by root (RFC 9162
// §2.1.3.2).
func VerifyInclusion(leaf Hash, index, size uint64, proof []Hash, root Hash) error {
	if index >= size {
		return fmt.Errorf("release: leaf index %d outside tree of size %d", index, size)
	}
	fn, sn := index, size-1
	r := leaf
	for _, p := range proof {
		if sn == 0 {
			return fmt.Errorf("release: inclusion proof too long for tree size %d", size)
		}
		if fn%2 == 1 || fn == sn {
			r = nodeHash(p, r)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			r = nodeHash(r, p)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return fmt.Errorf("release: inclusion proof too short for tree size %d", size)
	}
	if r != root {
		return fmt.Errorf("release: inclusion proof does not reach the checkpoint root")
	}
	return nil
}

// consistencyPath builds the proof that the first oldSize leaves of
// leaves form a prefix of the tree over all of them (RFC 9162
// §2.1.4.1). oldSize must be in [1, len(leaves)].
func consistencyPath(leaves []Hash, oldSize uint64) []Hash {
	return subPath(leaves, oldSize, true)
}

// subPath is the SUBPROOF recursion: complete marks that the old tree
// is still a complete prefix of the subtree under consideration.
func subPath(leaves []Hash, m uint64, complete bool) []Hash {
	n := uint64(len(leaves))
	if m == n {
		if complete {
			return nil
		}
		return []Hash{rootOf(leaves)}
	}
	k := splitPoint(n)
	if m <= k {
		return append(subPath(leaves[:k], m, complete), rootOf(leaves[k:]))
	}
	return append(subPath(leaves[k:], m-k, false), rootOf(leaves[:k]))
}

// VerifyConsistency checks that the tree (newSize, newRoot) is an
// append-only extension of (oldSize, oldRoot) using the given proof
// (RFC 9162 §2.1.4.2). The empty old tree is consistent with anything;
// equal sizes must carry equal roots and an empty proof.
func VerifyConsistency(oldSize uint64, oldRoot Hash, newSize uint64, newRoot Hash, proof []Hash) error {
	if oldSize > newSize {
		return fmt.Errorf("release: tree shrank from %d to %d entries", oldSize, newSize)
	}
	if oldSize == newSize {
		if oldRoot != newRoot {
			return fmt.Errorf("release: same size %d but diverged roots (fork)", oldSize)
		}
		if len(proof) != 0 {
			return fmt.Errorf("release: unexpected consistency proof between identical trees")
		}
		return nil
	}
	if oldSize == 0 {
		if len(proof) != 0 {
			return fmt.Errorf("release: unexpected consistency proof from the empty tree")
		}
		return nil
	}
	path := proof
	if oldSize&(oldSize-1) == 0 {
		// The old tree is a complete subtree of the new one, so its root
		// is not repeated in the proof; seed the walk with it.
		path = append([]Hash{oldRoot}, proof...)
	}
	if len(path) == 0 {
		return fmt.Errorf("release: empty consistency proof for %d -> %d", oldSize, newSize)
	}
	fn, sn := oldSize-1, newSize-1
	for fn%2 == 1 {
		fn >>= 1
		sn >>= 1
	}
	fr, sr := path[0], path[0]
	for _, c := range path[1:] {
		if sn == 0 {
			return fmt.Errorf("release: consistency proof too long for %d -> %d", oldSize, newSize)
		}
		if fn%2 == 1 || fn == sn {
			fr = nodeHash(c, fr)
			sr = nodeHash(c, sr)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			sr = nodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	if sn != 0 {
		return fmt.Errorf("release: consistency proof too short for %d -> %d", oldSize, newSize)
	}
	if fr != oldRoot {
		return fmt.Errorf("release: consistency proof does not reconstruct the old root")
	}
	if sr != newRoot {
		return fmt.Errorf("release: consistency proof does not reconstruct the new root")
	}
	return nil
}
