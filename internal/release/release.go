// Package release turns .vedz deployment artifacts into a verifiable
// release channel: the supply-chain half of the paper's trust story
// (§IV-C), modeled on firmware-transparency designs.
//
// Three artifacts make one release verifiable:
//
//   - An Envelope: a detached ed25519 signature over the artifact's
//     canonical content digest plus provenance metadata, produced at
//     export by a signer key.
//   - A transparency Log entry: the encoded envelope appended to an
//     append-only Merkle tree, with an inclusion proof tying the entry
//     to a signed tree-head Checkpoint.
//   - Witness countersignatures: independent witnesses verify that
//     each new checkpoint extends the previous one append-only (a
//     consistency proof) and countersign it; a split-view log cannot
//     obtain countersignatures from witnesses that saw the other view.
//
// A Bundle carries all three next to the artifact, and a Policy — the
// deploy-time trust configuration of required signer keys, the log key,
// witness keys and a minimum countersignature count — verifies it.
// cluster.Registry enforces a Policy before any artifact reaches a
// replica, and internal/tee closes the runtime side by attesting which
// plan digest each replica actually runs.
package release

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// EnvelopeVersion is the envelope wire-format version this package
// reads and writes.
const EnvelopeVersion = 1

// envelopeDomain separates envelope signatures from every other
// ed25519 use in the system.
const envelopeDomain = "vedliot-release-envelope/v1"

// Envelope is one signed release statement: a detached signature
// binding an artifact content digest (and its provenance summary) to a
// signer key. Its canonical encoding is the transparency-log leaf.
type Envelope struct {
	// Version is the envelope format version (EnvelopeVersion).
	Version int `json:"version"`
	// ArtifactDigest is the artifact's content digest ("sha256:<hex>"),
	// the identity everything else keys on.
	ArtifactDigest string `json:"artifact_digest"`
	// ArtifactBytes is the encoded artifact size, a cheap sanity bind.
	ArtifactBytes uint64 `json:"artifact_bytes"`
	// Model names the released model (Graph.Name).
	Model string `json:"model"`
	// Tool names the producer that signed the release.
	Tool string `json:"tool,omitempty"`
	// SignerID identifies the signing key (KeyID of its public key).
	SignerID string `json:"signer_id"`
	// Sig is the ed25519 signature over the envelope message.
	Sig []byte `json:"sig"`
}

// Encode returns the canonical (deterministic) encoding of the
// envelope — the exact bytes appended to the transparency log.
func (e Envelope) Encode() []byte {
	data, err := json.Marshal(e)
	if err != nil {
		// Envelope has no unmarshalable fields; keep the call sites clean.
		panic(fmt.Sprintf("release: encode envelope: %v", err))
	}
	return data
}

// DecodeEnvelope parses a canonically encoded envelope, rejecting
// non-canonical bytes: a log entry must re-encode to itself so leaf
// hashes are reproducible from the parsed form.
func DecodeEnvelope(data []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return Envelope{}, fmt.Errorf("release: decode envelope: %w", err)
	}
	if e.Version != EnvelopeVersion {
		return Envelope{}, fmt.Errorf("release: unsupported envelope version %d (this build reads %d)", e.Version, EnvelopeVersion)
	}
	if string(e.Encode()) != string(data) {
		return Envelope{}, fmt.Errorf("release: envelope not in canonical form")
	}
	return e, nil
}

// message is the domain-separated byte string the signer key signs: a
// hash over every envelope field except the signature itself.
func (e Envelope) message() []byte {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%d\n%s\n%d\n%s\n%s\n%s\n",
		envelopeDomain, e.Version, e.ArtifactDigest, e.ArtifactBytes, e.Model, e.Tool, e.SignerID)
	return h.Sum(nil)
}

// Verify checks the envelope signature against a candidate public key.
func (e Envelope) Verify(pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("release: bad public key length %d", len(pub))
	}
	if !ed25519.Verify(pub, e.message(), e.Sig) {
		return fmt.Errorf("release: bad envelope signature")
	}
	return nil
}

// KeyID derives the short identifier of an ed25519 public key used in
// envelopes and witness countersignatures: the first 8 bytes of its
// SHA-256, hex encoded.
func KeyID(pub ed25519.PublicKey) string {
	sum := sha256.Sum256(pub)
	return hex.EncodeToString(sum[:8])
}

// Signer holds a release signing key.
type Signer struct {
	priv ed25519.PrivateKey
}

// NewSigner generates a fresh release signing key.
func NewSigner() (*Signer, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("release: generate signer key: %w", err)
	}
	return &Signer{priv: priv}, nil
}

// NewSignerFromKey wraps an existing private key.
func NewSignerFromKey(priv ed25519.PrivateKey) (*Signer, error) {
	if len(priv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("release: bad private key length %d", len(priv))
	}
	return &Signer{priv: priv}, nil
}

// Public returns the signer's verification key.
func (s *Signer) Public() ed25519.PublicKey {
	return s.priv.Public().(ed25519.PublicKey)
}

// KeyID returns the identifier of the signer's public key.
func (s *Signer) KeyID() string { return KeyID(s.Public()) }

// Sign produces the release envelope for an artifact's content digest
// and provenance summary.
func (s *Signer) Sign(artifactDigest string, artifactBytes uint64, model, tool string) Envelope {
	e := Envelope{
		Version:        EnvelopeVersion,
		ArtifactDigest: artifactDigest,
		ArtifactBytes:  artifactBytes,
		Model:          model,
		Tool:           tool,
		SignerID:       s.KeyID(),
	}
	e.Sig = ed25519.Sign(s.priv, e.message())
	return e
}

// SignBytes signs the release of raw encoded artifact bytes, deriving
// the digest and size itself.
func (s *Signer) SignBytes(data []byte, model, tool string) Envelope {
	sum := sha256.Sum256(data)
	return s.Sign(fmt.Sprintf("sha256:%x", sum), uint64(len(data)), model, tool)
}
