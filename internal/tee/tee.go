// Package tee models trusted execution environments: SGX-style enclaves
// (measurement, sealing, ecall/ocall transition and memory-encryption
// costs) and TrustZone-style secure worlds (world switches, trusted
// applications). It is the substrate for the paper's §IV-C results: the
// Twine overhead study (enclave + WASM runtime) and the
// TrustZone/OP-TEE remote-attestation flow.
//
// Because no SGX or TrustZone hardware is available, costs are
// *accounted*, not incurred: every protected entry/exit adds to a
// simulated-overhead counter calibrated from published SGX transition
// measurements. Benchmarks report measured wall time plus accounted
// overhead, which preserves the relative ordering the paper reports.
package tee

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
)

// CostModel holds the transition-cost parameters.
type CostModel struct {
	// EcallNS is the cost of entering the enclave.
	EcallNS int64
	// OcallNS is the cost of an outside call from enclave code.
	OcallNS int64
	// CryptNSPerKB is the memory-encryption cost per KiB crossing the
	// enclave boundary.
	CryptNSPerKB int64
	// EPCBytes is the protected-memory size; working sets beyond it
	// page with PagingNSPerKB.
	EPCBytes      int64
	PagingNSPerKB int64
}

// SGXCosts returns a cost model calibrated from published SGX1
// microbenchmarks (~8k cycles per ecall round trip at ~2.6 GHz).
func SGXCosts() CostModel {
	return CostModel{
		EcallNS:       3200,
		OcallNS:       3000,
		CryptNSPerKB:  250,
		EPCBytes:      96 << 20,
		PagingNSPerKB: 40000,
	}
}

// TrustZoneCosts returns a cost model for a Cortex-A world switch via
// SMC plus OP-TEE dispatch (tens of microseconds per invocation).
func TrustZoneCosts() CostModel {
	return CostModel{
		EcallNS:      25000,
		OcallNS:      20000,
		CryptNSPerKB: 0, // TrustZone memory is partitioned, not encrypted
	}
}

// Enclave is one protected execution context.
type Enclave struct {
	cost CostModel

	measurement [32]byte
	sealKey     [32]byte

	// accounting
	overheadNS atomic.Int64
	ecalls     atomic.Int64
	ocalls     atomic.Int64

	workingSet int64
}

// NewEnclave creates an enclave whose measurement is the SHA-256 of the
// initial code/data image, the MRENCLAVE analogue.
func NewEnclave(image []byte, cost CostModel) *Enclave {
	e := &Enclave{cost: cost}
	e.measurement = sha256.Sum256(image)
	// Sealing key: derived from measurement and a simulated fuse key.
	h := sha256.New()
	h.Write([]byte("vedliot-seal-v1"))
	h.Write(e.measurement[:])
	copy(e.sealKey[:], h.Sum(nil))
	return e
}

// Measurement returns the enclave identity hash.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// OverheadNS returns total accounted transition/crypto overhead.
func (e *Enclave) OverheadNS() int64 { return e.overheadNS.Load() }

// Ecalls returns the number of enclave entries.
func (e *Enclave) Ecalls() int64 { return e.ecalls.Load() }

// Ocalls returns the number of outside calls.
func (e *Enclave) Ocalls() int64 { return e.ocalls.Load() }

// SetWorkingSet declares the enclave's resident data size, enabling the
// EPC paging cost once it exceeds the protected-memory capacity.
func (e *Enclave) SetWorkingSet(bytes int64) { e.workingSet = bytes }

// Ecall runs fn inside the enclave, accounting the transition and the
// boundary traffic of argBytes. The returned error is fn's.
func (e *Enclave) Ecall(argBytes int64, fn func() error) error {
	e.ecalls.Add(1)
	kb := (argBytes + 1023) / 1024
	over := e.cost.EcallNS + e.cost.CryptNSPerKB*kb
	if e.cost.EPCBytes > 0 && e.workingSet > e.cost.EPCBytes {
		// Fraction of accesses hitting paged-out EPC, charged per call.
		frac := float64(e.workingSet-e.cost.EPCBytes) / float64(e.workingSet)
		over += int64(frac * float64(e.cost.PagingNSPerKB) * float64(kb))
	}
	e.overheadNS.Add(over)
	return fn()
}

// Ocall runs fn outside the enclave on behalf of enclave code.
func (e *Enclave) Ocall(argBytes int64, fn func() error) error {
	e.ocalls.Add(1)
	kb := (argBytes + 1023) / 1024
	e.overheadNS.Add(e.cost.OcallNS + e.cost.CryptNSPerKB*kb)
	return fn()
}

// Seal encrypts data so only the same enclave identity can recover it
// (AES-256-GCM under the measurement-derived key).
func (e *Enclave) Seal(plaintext []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	// Deterministic nonce from a sealing counter would risk reuse
	// across restarts; derive from content instead (unique per
	// plaintext under this key for our usage).
	sum := sha256.Sum256(plaintext)
	nonce := sum[:gcm.NonceSize()]
	out := gcm.Seal(nil, nonce, plaintext, e.measurement[:])
	return append(append([]byte{}, nonce...), out...), nil
}

// Unseal reverses Seal; it fails for data sealed by a different
// identity.
func (e *Enclave) Unseal(sealed []byte) ([]byte, error) {
	block, err := aes.NewCipher(e.sealKey[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(sealed) < gcm.NonceSize() {
		return nil, errors.New("tee: sealed blob too short")
	}
	nonce, ct := sealed[:gcm.NonceSize()], sealed[gcm.NonceSize():]
	pt, err := gcm.Open(nil, nonce, ct, e.measurement[:])
	if err != nil {
		return nil, fmt.Errorf("tee: unseal: %w", err)
	}
	return pt, nil
}

// Quote is a signed attestation statement binding the enclave identity
// to a verifier nonce.
type Quote struct {
	Measurement [32]byte
	Nonce       []byte
	ReportData  []byte
	Sig         []byte
}

// GenerateQuote signs (measurement || nonce || reportData) with the
// platform attestation key.
func (e *Enclave) GenerateQuote(nonce, reportData []byte, platformKey ed25519.PrivateKey) Quote {
	msg := quoteMessage(e.measurement, nonce, reportData)
	return Quote{
		Measurement: e.measurement,
		Nonce:       append([]byte(nil), nonce...),
		ReportData:  append([]byte(nil), reportData...),
		Sig:         ed25519.Sign(platformKey, msg),
	}
}

// VerifyQuote checks a quote against the platform public key, the
// expected measurement and the challenge nonce.
func VerifyQuote(q Quote, platformPub ed25519.PublicKey, expected [32]byte, nonce []byte) error {
	if q.Measurement != expected {
		return fmt.Errorf("tee: measurement mismatch")
	}
	if string(q.Nonce) != string(nonce) {
		return fmt.Errorf("tee: nonce mismatch")
	}
	msg := quoteMessage(q.Measurement, q.Nonce, q.ReportData)
	if !ed25519.Verify(platformPub, msg, q.Sig) {
		return fmt.Errorf("tee: bad quote signature")
	}
	return nil
}

func quoteMessage(meas [32]byte, nonce, reportData []byte) []byte {
	var b []byte
	b = append(b, meas[:]...)
	var ln [4]byte
	binary.LittleEndian.PutUint32(ln[:], uint32(len(nonce)))
	b = append(b, ln[:]...)
	b = append(b, nonce...)
	b = append(b, reportData...)
	return b
}

// World is a TrustZone world.
type World int

// TrustZone worlds.
const (
	NormalWorld World = iota
	SecureWorld
)

// TrustZone models the ARM two-world split with OP-TEE-style trusted
// applications: context switches cost a world-switch transition, and
// trusted applications only run in the secure world.
type TrustZone struct {
	cost    CostModel
	current World

	switches   atomic.Int64
	overheadNS atomic.Int64

	tas map[string]func(args []byte) ([]byte, error)
}

// NewTrustZone starts in the normal world.
func NewTrustZone(cost CostModel) *TrustZone {
	return &TrustZone{cost: cost, tas: make(map[string]func([]byte) ([]byte, error))}
}

// RegisterTA installs a trusted application under a name. Registration
// is only possible from the secure world (secure boot installs TAs).
func (tz *TrustZone) RegisterTA(name string, fn func(args []byte) ([]byte, error)) error {
	if tz.current != SecureWorld {
		return fmt.Errorf("tee: TA registration requires the secure world")
	}
	tz.tas[name] = fn
	return nil
}

// SwitchTo changes worlds, accounting the SMC transition.
func (tz *TrustZone) SwitchTo(w World) {
	if w == tz.current {
		return
	}
	tz.current = w
	tz.switches.Add(1)
	tz.overheadNS.Add(tz.cost.EcallNS)
}

// Current returns the active world.
func (tz *TrustZone) Current() World { return tz.current }

// InvokeTA calls a trusted application from the normal world: it
// switches to the secure world, runs the TA, and switches back — the
// "rather complex" context-change operation the paper notes cannot be
// done at user level.
func (tz *TrustZone) InvokeTA(name string, args []byte) ([]byte, error) {
	if tz.current != NormalWorld {
		return nil, fmt.Errorf("tee: InvokeTA must start from the normal world")
	}
	ta, ok := tz.tas[name]
	if !ok {
		return nil, fmt.Errorf("tee: no trusted application %q", name)
	}
	tz.SwitchTo(SecureWorld)
	defer tz.SwitchTo(NormalWorld)
	return ta(args)
}

// OverheadNS returns accounted world-switch overhead.
func (tz *TrustZone) OverheadNS() int64 { return tz.overheadNS.Load() }

// Switches returns the world-switch count.
func (tz *TrustZone) Switches() int64 { return tz.switches.Load() }
