package tee

import (
	"bytes"
	"crypto/ed25519"
	"crypto/rand"
	"testing"
	"testing/quick"
)

func TestMeasurementDeterministic(t *testing.T) {
	a := NewEnclave([]byte("image-1"), SGXCosts())
	b := NewEnclave([]byte("image-1"), SGXCosts())
	c := NewEnclave([]byte("image-2"), SGXCosts())
	if a.Measurement() != b.Measurement() {
		t.Error("same image, different measurement")
	}
	if a.Measurement() == c.Measurement() {
		t.Error("different images share a measurement")
	}
}

func TestEcallAccounting(t *testing.T) {
	e := NewEnclave([]byte("x"), SGXCosts())
	ran := false
	if err := e.Ecall(1024, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("ecall body did not run")
	}
	if e.Ecalls() != 1 {
		t.Errorf("ecalls = %d", e.Ecalls())
	}
	want := SGXCosts().EcallNS + SGXCosts().CryptNSPerKB
	if e.OverheadNS() != want {
		t.Errorf("overhead = %d, want %d", e.OverheadNS(), want)
	}
	// Ocall adds its own cost.
	_ = e.Ocall(0, func() error { return nil })
	if e.Ocalls() != 1 || e.OverheadNS() <= want {
		t.Error("ocall not accounted")
	}
}

func TestEPCPagingKicksIn(t *testing.T) {
	cost := SGXCosts()
	small := NewEnclave([]byte("x"), cost)
	big := NewEnclave([]byte("x"), cost)
	small.SetWorkingSet(1 << 20)
	big.SetWorkingSet(cost.EPCBytes * 4)
	_ = small.Ecall(4096, func() error { return nil })
	_ = big.Ecall(4096, func() error { return nil })
	if big.OverheadNS() <= small.OverheadNS() {
		t.Errorf("EPC paging not charged: big %d <= small %d", big.OverheadNS(), small.OverheadNS())
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := NewEnclave([]byte("enclave-code"), SGXCosts())
	secret := []byte("model weights v1")
	sealed, err := e.Seal(secret)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(sealed, secret) {
		t.Error("sealed blob leaks plaintext")
	}
	back, err := e.Unseal(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, secret) {
		t.Errorf("unsealed %q", back)
	}
	// A different enclave identity cannot unseal.
	other := NewEnclave([]byte("other-code"), SGXCosts())
	if _, err := other.Unseal(sealed); err == nil {
		t.Error("foreign enclave unsealed the blob")
	}
	// Tampered blob rejected.
	sealed[len(sealed)-1] ^= 1
	if _, err := e.Unseal(sealed); err == nil {
		t.Error("tampered blob unsealed")
	}
	if _, err := e.Unseal([]byte{1, 2}); err == nil {
		t.Error("truncated blob unsealed")
	}
}

func TestSealRoundTripProperty(t *testing.T) {
	e := NewEnclave([]byte("p"), SGXCosts())
	f := func(data []byte) bool {
		sealed, err := e.Seal(data)
		if err != nil {
			return false
		}
		back, err := e.Unseal(sealed)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuoteVerify(t *testing.T) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEnclave([]byte("app"), SGXCosts())
	nonce := []byte("fresh-nonce-123")
	q := e.GenerateQuote(nonce, []byte("report"), priv)
	if err := VerifyQuote(q, pub, e.Measurement(), nonce); err != nil {
		t.Fatal(err)
	}
	// Wrong nonce.
	if err := VerifyQuote(q, pub, e.Measurement(), []byte("other")); err == nil {
		t.Error("stale nonce accepted")
	}
	// Wrong measurement.
	var wrong [32]byte
	if err := VerifyQuote(q, pub, wrong, nonce); err == nil {
		t.Error("wrong measurement accepted")
	}
	// Forged signature.
	q2 := q
	q2.Sig = append([]byte(nil), q.Sig...)
	q2.Sig[0] ^= 1
	if err := VerifyQuote(q2, pub, e.Measurement(), nonce); err == nil {
		t.Error("forged signature accepted")
	}
}

func TestTrustZoneWorldSwitch(t *testing.T) {
	tz := NewTrustZone(TrustZoneCosts())
	if tz.Current() != NormalWorld {
		t.Fatal("should start in the normal world")
	}
	// Registration from the normal world fails.
	if err := tz.RegisterTA("echo", func(b []byte) ([]byte, error) { return b, nil }); err == nil {
		t.Error("TA registered from normal world")
	}
	// Secure boot installs the TA.
	tz.SwitchTo(SecureWorld)
	if err := tz.RegisterTA("echo", func(b []byte) ([]byte, error) { return append([]byte("ta:"), b...), nil }); err != nil {
		t.Fatal(err)
	}
	tz.SwitchTo(NormalWorld)
	before := tz.Switches()

	out, err := tz.InvokeTA("echo", []byte("hi"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ta:hi" {
		t.Errorf("TA output %q", out)
	}
	if tz.Current() != NormalWorld {
		t.Error("world not restored")
	}
	if tz.Switches() != before+2 {
		t.Errorf("switches = %d, want %d", tz.Switches(), before+2)
	}
	if tz.OverheadNS() == 0 {
		t.Error("no overhead accounted")
	}
	if _, err := tz.InvokeTA("ghost", nil); err == nil {
		t.Error("unknown TA invoked")
	}
}
