package require

import (
	"strings"
	"testing"
)

func build(t *testing.T) *Framework {
	t.Helper()
	f := New()
	mustView := func(id string, c Concern, l Level) {
		if _, err := f.AddView(id, c, l); err != nil {
			t.Fatal(err)
		}
	}
	mustView("safety-knowledge", Safety, KnowledgeLevel)
	mustView("safety-concept", Safety, ConceptualLevel)
	mustView("safety-design", Safety, DesignLevel)
	mustView("hw-design", Hardware, DesignLevel)
	mustView("dl-design", DeepLearningModel, DesignLevel)
	mustView("dl-runtime", DeepLearningModel, RunTimeLevel)
	return f
}

func TestGridValidation(t *testing.T) {
	f := New()
	if _, err := f.AddView("x", Concern(99), DesignLevel); err == nil {
		t.Error("invalid concern accepted")
	}
	if _, err := f.AddView("x", Safety, Level(9)); err == nil {
		t.Error("invalid level accepted")
	}
	if _, err := f.AddView("x", Safety, DesignLevel); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddView("x", Safety, DesignLevel); err == nil {
		t.Error("duplicate view accepted")
	}
}

func TestDependencyRule(t *testing.T) {
	f := build(t)
	// Vertical within one cluster: allowed.
	if err := f.Depend("safety-design", "safety-concept"); err != nil {
		t.Errorf("vertical dependency rejected: %v", err)
	}
	// Horizontal within one level: allowed.
	if err := f.Depend("safety-design", "hw-design"); err != nil {
		t.Errorf("horizontal dependency rejected: %v", err)
	}
	// Diagonal: rejected (the paper's core structural claim).
	if err := f.Depend("safety-concept", "dl-runtime"); err == nil {
		t.Error("diagonal dependency accepted")
	}
	if err := f.Depend("ghost", "hw-design"); err == nil {
		t.Error("unknown view accepted")
	}
	deps := f.Dependencies("safety-design")
	if len(deps) != 2 {
		t.Errorf("deps = %v", deps)
	}
}

func TestTraceability(t *testing.T) {
	f := build(t)
	add := func(view string, r *Requirement) {
		t.Helper()
		if err := f.AddRequirement(view, r); err != nil {
			t.Fatal(err)
		}
	}
	add("safety-knowledge", &Requirement{ID: "R1", Text: "no undetected arc", VerifiedBy: "BenchmarkArcDetection"})
	add("safety-concept", &Requirement{ID: "R2", Text: "dual-channel monitor", Satisfies: []string{"R1"}, VerifiedBy: "TestMonitorDetectsInjectedErrors"})
	add("safety-design", &Requirement{ID: "R3", Text: "robustness service deadline", Satisfies: []string{"R2"}})
	add("dl-design", &Requirement{ID: "R4", Text: "quantized detector", Satisfies: []string{"R9"}, VerifiedBy: "TestQuantizeWeightsPerTensor"})

	rep := f.Trace()
	if rep.Total != 4 {
		t.Errorf("total = %d", rep.Total)
	}
	if len(rep.Unverified) != 1 || rep.Unverified[0] != "R3" {
		t.Errorf("unverified = %v", rep.Unverified)
	}
	if len(rep.Dangling) != 1 || !strings.Contains(rep.Dangling[0], "R9") {
		t.Errorf("dangling = %v", rep.Dangling)
	}
	if rep.Complete() {
		t.Error("incomplete trace reported complete")
	}

	// Orphan: below knowledge level without Satisfies.
	f2 := build(t)
	if err := f2.AddRequirement("safety-design", &Requirement{ID: "O1", Text: "orphan", VerifiedBy: "x"}); err != nil {
		t.Fatal(err)
	}
	if rep2 := f2.Trace(); len(rep2.Orphans) != 1 {
		t.Errorf("orphans = %v", rep2.Orphans)
	}
}

func TestRequirementValidation(t *testing.T) {
	f := build(t)
	if err := f.AddRequirement("ghost", &Requirement{ID: "R"}); err == nil {
		t.Error("unknown view accepted")
	}
	if err := f.AddRequirement("safety-design", &Requirement{}); err == nil {
		t.Error("empty ID accepted")
	}
	if err := f.AddRequirement("safety-design", &Requirement{ID: "D"}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddRequirement("hw-design", &Requirement{ID: "D"}); err == nil {
		t.Error("duplicate requirement accepted")
	}
}

func TestMiddleOut(t *testing.T) {
	f := build(t)
	up, down, err := f.MiddleOut("safety-design")
	if err != nil {
		t.Fatal(err)
	}
	wantUp := map[string]bool{"safety-knowledge": true, "safety-concept": true}
	for _, u := range up {
		if !wantUp[u] {
			t.Errorf("unexpected upward view %s", u)
		}
	}
	if len(up) != 2 {
		t.Errorf("up = %v", up)
	}
	// Downward: same-cluster below + same-level partners.
	hasHW := false
	for _, d := range down {
		if d == "hw-design" {
			hasHW = true
		}
		if d == "dl-runtime" {
			t.Error("diagonal view reachable")
		}
	}
	if !hasHW {
		t.Errorf("down = %v missing horizontal partner", down)
	}
	if _, _, err := f.MiddleOut("ghost"); err == nil {
		t.Error("unknown seed accepted")
	}
}

func TestNamesAndSummary(t *testing.T) {
	for c := Concern(0); c < NumConcerns; c++ {
		if strings.HasPrefix(c.String(), "Concern(") {
			t.Errorf("concern %d unnamed", int(c))
		}
	}
	for l := Level(0); l < NumLevels; l++ {
		if strings.HasPrefix(l.String(), "Level(") {
			t.Errorf("level %d unnamed", int(l))
		}
	}
	f := build(t)
	sum := f.GridSummary()
	if !strings.Contains(sum, "safety") || !strings.Contains(sum, "hardware") {
		t.Error("summary missing rows")
	}
}
