// Package require implements the VEDLIoT architectural framework for
// AIoT requirements engineering (§IV-A): a two-dimensional grid of
// architectural views organized by cluster of concern and level of
// abstraction, with the paper's dependency rule — dependencies exist
// only vertically within one cluster or horizontally within one level —
// enforced and checked, plus traceability analysis and the middle-out
// workflow.
package require

import (
	"fmt"
	"sort"
)

// Concern is a cluster of concerns (the paper lists twelve).
type Concern int

// Clusters of concern, §IV-A.
const (
	LogicalBehavior Concern = iota
	ProcessBehavior
	ContextConstraints
	LearningSetting
	DeepLearningModel
	Hardware
	Information
	Communication
	Ethical
	Safety
	Security
	Privacy
	Energy
	NumConcerns
)

var concernNames = [...]string{
	"logical behavior", "process behavior", "context and constraints",
	"learning setting", "deep learning model", "hardware", "information",
	"communication", "ethical concerns", "safety", "security", "privacy",
	"energy",
}

// String names the concern.
func (c Concern) String() string {
	if c >= 0 && int(c) < len(concernNames) {
		return concernNames[c]
	}
	return fmt.Sprintf("Concern(%d)", int(c))
}

// Level is a level of abstraction.
type Level int

// Levels of abstraction, §IV-A.
const (
	KnowledgeLevel Level = iota
	ConceptualLevel
	DesignLevel
	RunTimeLevel
	NumLevels
)

var levelNames = [...]string{"knowledge", "conceptual", "design", "run-time"}

// String names the level.
func (l Level) String() string {
	if l >= 0 && int(l) < len(levelNames) {
		return levelNames[l]
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// View is one architectural view in the grid cell (Concern, Level).
type View struct {
	ID      string
	Concern Concern
	Level   Level
	// Requirements anchored in this view.
	Requirements []*Requirement
}

// Requirement is one engineering artifact with trace links.
type Requirement struct {
	ID   string
	Text string
	// Satisfies lists requirement IDs this one refines or implements.
	Satisfies []string
	// VerifiedBy names the test/bench artifact demonstrating it.
	VerifiedBy string
}

// Framework is one system's architectural description.
type Framework struct {
	views map[string]*View
	// deps maps view ID to the view IDs it depends on.
	deps map[string][]string
	reqs map[string]*Requirement
}

// New creates an empty framework.
func New() *Framework {
	return &Framework{
		views: make(map[string]*View),
		deps:  make(map[string][]string),
		reqs:  make(map[string]*Requirement),
	}
}

// AddView registers a view in a grid cell.
func (f *Framework) AddView(id string, c Concern, l Level) (*View, error) {
	if c < 0 || c >= NumConcerns {
		return nil, fmt.Errorf("require: invalid concern %d", int(c))
	}
	if l < 0 || l >= NumLevels {
		return nil, fmt.Errorf("require: invalid level %d", int(l))
	}
	if _, dup := f.views[id]; dup {
		return nil, fmt.Errorf("require: duplicate view %q", id)
	}
	v := &View{ID: id, Concern: c, Level: l}
	f.views[id] = v
	return v, nil
}

// View returns a registered view or nil.
func (f *Framework) View(id string) *View { return f.views[id] }

// AddRequirement anchors a requirement in a view.
func (f *Framework) AddRequirement(viewID string, r *Requirement) error {
	v := f.views[viewID]
	if v == nil {
		return fmt.Errorf("require: no view %q", viewID)
	}
	if r.ID == "" {
		return fmt.Errorf("require: requirement without ID")
	}
	if _, dup := f.reqs[r.ID]; dup {
		return fmt.Errorf("require: duplicate requirement %q", r.ID)
	}
	v.Requirements = append(v.Requirements, r)
	f.reqs[r.ID] = r
	return nil
}

// Depend declares that view `from` depends on view `to`. The paper's
// structural rule is enforced: dependencies exist only vertically
// (same cluster of concern) or horizontally (same level of
// abstraction) — anything else is rejected, which "reduces the
// complexity of the system design challenge and allows for better
// traceability".
func (f *Framework) Depend(from, to string) error {
	vf, vt := f.views[from], f.views[to]
	if vf == nil || vt == nil {
		return fmt.Errorf("require: unknown view in dependency %s -> %s", from, to)
	}
	if vf.Concern != vt.Concern && vf.Level != vt.Level {
		return fmt.Errorf(
			"require: diagonal dependency %s (%s/%s) -> %s (%s/%s) violates the framework rule",
			from, vf.Concern, vf.Level, to, vt.Concern, vt.Level)
	}
	f.deps[from] = append(f.deps[from], to)
	return nil
}

// Dependencies returns the declared dependencies of a view.
func (f *Framework) Dependencies(id string) []string {
	out := append([]string(nil), f.deps[id]...)
	sort.Strings(out)
	return out
}

// TraceReport summarizes requirement traceability.
type TraceReport struct {
	Total      int
	Unverified []string // requirements without VerifiedBy
	Dangling   []string // Satisfies references to unknown requirements
	Orphans    []string // non-knowledge-level requirements satisfying nothing
}

// Complete reports whether the trace is fully closed.
func (r TraceReport) Complete() bool {
	return len(r.Unverified) == 0 && len(r.Dangling) == 0 && len(r.Orphans) == 0
}

// Trace audits the requirement graph: every requirement should be
// verified, every Satisfies link should resolve, and every requirement
// below the knowledge level should refine something above it.
func (f *Framework) Trace() TraceReport {
	rep := TraceReport{Total: len(f.reqs)}
	// Locate each requirement's level via its view.
	levelOf := make(map[string]Level, len(f.reqs))
	for _, v := range f.views {
		for _, r := range v.Requirements {
			levelOf[r.ID] = v.Level
		}
	}
	for id, r := range f.reqs {
		if r.VerifiedBy == "" {
			rep.Unverified = append(rep.Unverified, id)
		}
		for _, s := range r.Satisfies {
			if _, ok := f.reqs[s]; !ok {
				rep.Dangling = append(rep.Dangling, fmt.Sprintf("%s -> %s", id, s))
			}
		}
		if levelOf[id] > KnowledgeLevel && len(r.Satisfies) == 0 {
			rep.Orphans = append(rep.Orphans, id)
		}
	}
	sort.Strings(rep.Unverified)
	sort.Strings(rep.Dangling)
	sort.Strings(rep.Orphans)
	return rep
}

// MiddleOut runs the middle-out workflow the framework supports
// (§IV-A): given a designated component view (e.g. an existing hardware
// platform at the design level), it returns the views reachable upward
// (requirements derivation) and downward (integration), seeded from the
// middle.
func (f *Framework) MiddleOut(seedView string) (upward, downward []string, err error) {
	seed := f.views[seedView]
	if seed == nil {
		return nil, nil, fmt.Errorf("require: no view %q", seedView)
	}
	for id, v := range f.views {
		if id == seedView {
			continue
		}
		if v.Concern != seed.Concern && v.Level != seed.Level {
			continue // unreachable under the dependency rule
		}
		if v.Level < seed.Level {
			upward = append(upward, id)
		} else if v.Level > seed.Level {
			downward = append(downward, id)
		} else {
			// Same level: horizontal integration partners count as
			// downstream work.
			downward = append(downward, id)
		}
	}
	sort.Strings(upward)
	sort.Strings(downward)
	return upward, downward, nil
}

// GridSummary renders the populated grid (concern × level view counts).
func (f *Framework) GridSummary() string {
	counts := make(map[[2]int]int)
	for _, v := range f.views {
		counts[[2]int{int(v.Concern), int(v.Level)}]++
	}
	out := ""
	for c := Concern(0); c < NumConcerns; c++ {
		row := fmt.Sprintf("%-26s", c)
		for l := Level(0); l < NumLevels; l++ {
			row += fmt.Sprintf(" %2d", counts[[2]int{int(c), int(l)}])
		}
		out += row + "\n"
	}
	return out
}
