package minisql

import (
	"fmt"
	"sort"

	"vedliot/internal/wasm"
)

// WasmStore keeps a table's data plane inside the wasm VM: the storage
// engine is an open-addressing hash table hand-assembled for the VM
// (functions init/put/find/get/del/count over linear memory). It
// supports the key/value table shape of the Twine benchmark — two INT
// columns with the first as PRIMARY KEY — mirroring the paper's
// "database fully executed inside the runtime" setup.
type WasmStore struct {
	vm     *wasm.VM
	schema Schema

	// OnCall, when set, is invoked around every VM entry; the enclave
	// composition (internal/tee) hooks transition costs here.
	OnCall func()

	fnInit, fnPut, fnFind, fnGet, fnDel, fnCount int
}

// KV hash-table layout inside VM linear memory.
const (
	kvHdrCap   = 0 // capacity (power of two)
	kvHdrCount = 4
	kvSlots    = 8  // first slot offset
	kvSlotSize = 12 // key, used-flag, value
)

// hash constant (Knuth multiplicative, as i32).
const kvHashMul = -1640531535

// BuildKVModule assembles the hash-table module. Exported for the
// Twine benchmark, which also measures the raw VM path.
func BuildKVModule() (*wasm.Module, error) {
	mod := &wasm.Module{MemPages: 4}

	// init(cap): header = {cap, 0}.
	initA := &wasm.Asm{}
	initA.Const(kvHdrCap).Get(0).I(wasm.OpI32Store)
	initA.Const(kvHdrCount).Const(0).I(wasm.OpI32Store)
	initA.Const(0).I(wasm.OpReturn)

	// put(k, v) -> 1 new, 2 replaced.
	// locals: 0=k 1=v 2=cap 3=idx 4=addr 5=mode 6=used
	putA := &wasm.Asm{}
	putA.Const(kvHdrCap).I(wasm.OpI32Load).Set(2)
	// idx = (k * hashMul) & (cap - 1)
	putA.Get(0).Const(kvHashMul).I(wasm.OpI32Mul).Get(2).Const(1).I(wasm.OpI32Sub).I(wasm.OpI32And).Set(3)
	putA.I(wasm.OpBlock) // A
	putA.I(wasm.OpLoop)  // B
	// addr = kvSlots + idx*kvSlotSize
	putA.Get(3).Const(kvSlotSize).I(wasm.OpI32Mul).Const(kvSlots).I(wasm.OpI32Add).Set(4)
	putA.Get(4).Imm(wasm.OpI32Load, 4).Set(6) // used flag
	// if used == 0: mode = 1; break A.
	putA.I(wasm.OpBlock) // C
	putA.Get(6).Imm(wasm.OpBrIf, 0)
	putA.Const(1).Set(5)
	putA.Imm(wasm.OpBr, 2) // to end of A
	putA.I(wasm.OpEnd)     // C
	// if used == 1 && key == k: mode = 2; break A.
	putA.I(wasm.OpBlock) // D
	putA.Get(6).Const(1).I(wasm.OpI32Ne).Imm(wasm.OpBrIf, 0)
	putA.Get(4).I(wasm.OpI32Load).Get(0).I(wasm.OpI32Ne).Imm(wasm.OpBrIf, 0)
	putA.Const(2).Set(5)
	putA.Imm(wasm.OpBr, 2)
	putA.I(wasm.OpEnd) // D
	// idx = (idx + 1) & (cap - 1); continue.
	putA.Get(3).Const(1).I(wasm.OpI32Add).Get(2).Const(1).I(wasm.OpI32Sub).I(wasm.OpI32And).Set(3)
	putA.Imm(wasm.OpBr, 0)
	putA.I(wasm.OpEnd) // B
	putA.I(wasm.OpEnd) // A
	// Write the slot: key, used=1, value.
	putA.Get(4).Get(0).I(wasm.OpI32Store)
	putA.Get(4).Get(0).I(wasm.OpI32Store) // key at offset 0 (idempotent)
	putA.Get(4).Const(1).Imm(wasm.OpI32Store, 4)
	putA.Get(4).Get(1).Imm(wasm.OpI32Store, 8)
	// if mode == 1: count++.
	putA.I(wasm.OpBlock)
	putA.Get(5).Const(1).I(wasm.OpI32Ne).Imm(wasm.OpBrIf, 0)
	putA.Const(kvHdrCount).Const(kvHdrCount).I(wasm.OpI32Load).Const(1).I(wasm.OpI32Add).I(wasm.OpI32Store)
	putA.I(wasm.OpEnd)
	putA.Get(5).I(wasm.OpReturn)

	// find(k) -> slot address or 0.
	// locals: 0=k 1=cap 2=idx 3=addr 4=ret 5=steps 6=used
	findA := &wasm.Asm{}
	findA.Const(kvHdrCap).I(wasm.OpI32Load).Set(1)
	findA.Get(0).Const(kvHashMul).I(wasm.OpI32Mul).Get(1).Const(1).I(wasm.OpI32Sub).I(wasm.OpI32And).Set(2)
	findA.I(wasm.OpBlock) // A
	findA.I(wasm.OpLoop)  // B
	findA.Get(2).Const(kvSlotSize).I(wasm.OpI32Mul).Const(kvSlots).I(wasm.OpI32Add).Set(3)
	findA.Get(3).Imm(wasm.OpI32Load, 4).Set(6)
	// empty slot ends the probe (ret stays 0).
	findA.Get(6).I(wasm.OpI32Eqz).Imm(wasm.OpBrIf, 1)
	// live slot with matching key: ret = addr; break.
	findA.I(wasm.OpBlock) // C
	findA.Get(6).Const(1).I(wasm.OpI32Ne).Imm(wasm.OpBrIf, 0)
	findA.Get(3).I(wasm.OpI32Load).Get(0).I(wasm.OpI32Ne).Imm(wasm.OpBrIf, 0)
	findA.Get(3).Set(4)
	findA.Imm(wasm.OpBr, 2)
	findA.I(wasm.OpEnd) // C
	// idx advance; stop after cap probes.
	findA.Get(2).Const(1).I(wasm.OpI32Add).Get(1).Const(1).I(wasm.OpI32Sub).I(wasm.OpI32And).Set(2)
	findA.Get(5).Const(1).I(wasm.OpI32Add).Tee(5).I(wasm.OpDrop)
	findA.Get(5).Get(1).I(wasm.OpI32GeU).Imm(wasm.OpBrIf, 1)
	findA.Imm(wasm.OpBr, 0)
	findA.I(wasm.OpEnd) // B
	findA.I(wasm.OpEnd) // A
	findA.Get(4).I(wasm.OpReturn)

	// get(k) -> value or 0. locals: 0=k 1=r
	getA := &wasm.Asm{}
	getA.I(wasm.OpBlock)
	getA.Get(0).Imm(wasm.OpCall, 2 /* find */).Tee(1).I(wasm.OpI32Eqz).Imm(wasm.OpBrIf, 0)
	getA.Get(1).Imm(wasm.OpI32Load, 8).I(wasm.OpReturn)
	getA.I(wasm.OpEnd)
	getA.Const(0).I(wasm.OpReturn)

	// del(k) -> 1 deleted, 0 missing. locals: 0=k 1=r
	delA := &wasm.Asm{}
	delA.I(wasm.OpBlock)
	delA.Get(0).Imm(wasm.OpCall, 2).Tee(1).I(wasm.OpI32Eqz).Imm(wasm.OpBrIf, 0)
	delA.Get(1).Const(2).Imm(wasm.OpI32Store, 4) // tombstone
	delA.Const(kvHdrCount).Const(kvHdrCount).I(wasm.OpI32Load).Const(1).I(wasm.OpI32Sub).I(wasm.OpI32Store)
	delA.Const(1).I(wasm.OpReturn)
	delA.I(wasm.OpEnd)
	delA.Const(0).I(wasm.OpReturn)

	// count() -> live entries.
	countA := &wasm.Asm{}
	countA.Const(kvHdrCount).I(wasm.OpI32Load).I(wasm.OpReturn)

	mod.Funcs = []*wasm.Func{
		{Name: "init", NumParams: 1, NumLocals: 0, Body: initA.Body()},
		{Name: "put", NumParams: 2, NumLocals: 5, Body: putA.Body()},
		{Name: "find", NumParams: 1, NumLocals: 6, Body: findA.Body()},
		{Name: "get", NumParams: 1, NumLocals: 1, Body: getA.Body()},
		{Name: "del", NumParams: 1, NumLocals: 1, Body: delA.Body()},
		{Name: "count", NumParams: 0, NumLocals: 0, Body: countA.Body()},
	}
	if err := mod.Prepare(); err != nil {
		return nil, err
	}
	return mod, nil
}

// kvCapacity is the fixed hash-table capacity (power of two). With
// 12-byte slots this fits comfortably in the module's 4 pages.
const kvCapacity = 16384

// NewWasmStore instantiates the VM-backed store for a KV-shaped schema.
func NewWasmStore(schema Schema) (*WasmStore, error) {
	if len(schema) != 2 || schema[0].Kind != IntKind || schema[1].Kind != IntKind || !schema[0].PrimaryKey {
		return nil, fmt.Errorf("minisql: wasm store supports (k INT PRIMARY KEY, v INT) tables only")
	}
	mod, err := BuildKVModule()
	if err != nil {
		return nil, err
	}
	vm, err := wasm.NewVM(mod)
	if err != nil {
		return nil, err
	}
	s := &WasmStore{vm: vm, schema: schema}
	for _, fn := range []struct {
		name string
		dst  *int
	}{
		{"init", &s.fnInit}, {"put", &s.fnPut}, {"find", &s.fnFind},
		{"get", &s.fnGet}, {"del", &s.fnDel}, {"count", &s.fnCount},
	} {
		idx, err := mod.FuncIndex(fn.name)
		if err != nil {
			return nil, err
		}
		*fn.dst = idx
	}
	if _, err := s.call(s.fnInit, kvCapacity); err != nil {
		return nil, err
	}
	return s, nil
}

// WasmFactory is a StoreFactory placing every table in its own VM.
func WasmFactory(_ string, schema Schema) (RowStore, error) {
	return NewWasmStore(schema)
}

// VM exposes the underlying VM (the Twine bench reads Executed).
func (s *WasmStore) VM() *wasm.VM { return s.vm }

func (s *WasmStore) call(fn int, args ...int32) (int32, error) {
	if s.OnCall != nil {
		s.OnCall()
	}
	return s.vm.Call(fn, args...)
}

// Insert implements RowStore; the primary key doubles as rowid.
func (s *WasmStore) Insert(row []Value) (int64, error) {
	k, v, err := s.kv(row)
	if err != nil {
		return 0, err
	}
	if _, err := s.call(s.fnPut, k, v); err != nil {
		return 0, err
	}
	return int64(k), nil
}

func (s *WasmStore) kv(row []Value) (int32, int32, error) {
	if err := s.schema.checkRow(row); err != nil {
		return 0, 0, err
	}
	k, v := row[0].I, row[1].I
	if int64(int32(k)) != k || int64(int32(v)) != v {
		return 0, 0, fmt.Errorf("minisql: wasm store holds 32-bit values, got (%d, %d)", k, v)
	}
	return int32(k), int32(v), nil
}

// Scan implements RowStore: the host walks the table memory directly
// (the read-side ocall of the enclave composition), visiting keys in
// sorted order for determinism.
func (s *WasmStore) Scan(fn func(int64, []Value) (bool, error)) error {
	if s.OnCall != nil {
		s.OnCall()
	}
	mem := s.vm.Memory()
	type kv struct{ k, v int32 }
	var entries []kv
	for i := 0; i < kvCapacity; i++ {
		base := kvSlots + i*kvSlotSize
		used := leU32(mem[base+4:])
		if used != 1 {
			continue
		}
		entries = append(entries, kv{int32(leU32(mem[base:])), int32(leU32(mem[base+8:]))})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	for _, e := range entries {
		cont, err := fn(int64(e.k), []Value{IntValue(int64(e.k)), IntValue(int64(e.v))})
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Update implements RowStore.
func (s *WasmStore) Update(rowid int64, row []Value) error {
	k, v, err := s.kv(row)
	if err != nil {
		return err
	}
	if int64(k) != rowid {
		// Primary key changed: delete the old entry first.
		if _, err := s.call(s.fnDel, int32(rowid)); err != nil {
			return err
		}
	}
	_, err = s.call(s.fnPut, k, v)
	return err
}

// Delete implements RowStore.
func (s *WasmStore) Delete(rowid int64) error {
	r, err := s.call(s.fnDel, int32(rowid))
	if err != nil {
		return err
	}
	if r == 0 {
		return fmt.Errorf("minisql: no rowid %d", rowid)
	}
	return nil
}

// LookupPK implements RowStore.
func (s *WasmStore) LookupPK(pk int64) ([]Value, int64, bool, error) {
	if int64(int32(pk)) != pk {
		return nil, 0, false, nil
	}
	addr, err := s.call(s.fnFind, int32(pk))
	if err != nil {
		return nil, 0, false, err
	}
	if addr == 0 {
		return nil, 0, false, nil
	}
	v, err := s.vm.ReadU32(uint32(addr) + 8)
	if err != nil {
		return nil, 0, false, err
	}
	return []Value{IntValue(pk), IntValue(int64(int32(v)))}, pk, true, nil
}
