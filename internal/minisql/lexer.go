package minisql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lex tokenizes a statement. Keywords stay tokIdent; the parser
// compares case-insensitively.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(src) && (isIdentChar(src[j])) {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j], i})
			i = j
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			j := i + 1
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < len(src) {
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("minisql: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j
		case strings.ContainsRune("(),*=;", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '<' || c == '>' || c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokSymbol, src[i : i+2], i})
				i += 2
			} else if c == '!' {
				return nil, fmt.Errorf("minisql: stray '!' at %d", i)
			} else {
				toks = append(toks, token{tokSymbol, string(c), i})
				i++
			}
		default:
			return nil, fmt.Errorf("minisql: unexpected character %q at %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
