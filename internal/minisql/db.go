package minisql

import (
	"fmt"
	"sort"
)

// RowStore is the pluggable storage engine behind a table. The native
// store keeps rows in process memory; the wasm store keeps the data
// plane inside the VM (see WasmStore).
type RowStore interface {
	// Insert adds a row and returns its rowid.
	Insert(row []Value) (int64, error)
	// Scan visits all rows in rowid order until fn returns false.
	Scan(fn func(rowid int64, row []Value) (bool, error)) error
	// Update replaces the row with the given rowid.
	Update(rowid int64, row []Value) error
	// Delete removes a row by rowid.
	Delete(rowid int64) error
	// LookupPK returns the row with the given primary-key value, when
	// the store maintains a PK index (ok=false when absent).
	LookupPK(pk int64) (row []Value, rowid int64, ok bool, err error)
}

// StoreFactory creates a RowStore for a new table.
type StoreFactory func(table string, schema Schema) (RowStore, error)

// Result is the outcome of one statement.
type Result struct {
	Columns  []string
	Rows     [][]Value
	Affected int
}

// DB is one database instance.
type DB struct {
	tables  map[string]*table
	factory StoreFactory
}

type table struct {
	name   string
	schema Schema
	store  RowStore
}

// NewDB creates a database using the given store factory (nil = native
// in-memory store with primary-key indexing).
func NewDB(factory StoreFactory) *DB {
	if factory == nil {
		factory = NativeFactory
	}
	return &DB{tables: make(map[string]*table), factory: factory}
}

// Exec parses and executes one statement.
func (db *DB) Exec(sql string) (*Result, error) {
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return db.ExecStmt(st)
}

// ExecStmt executes a pre-parsed statement (the prepared-statement path
// used by the benchmark loops to exclude parse time).
func (db *DB) ExecStmt(st Statement) (*Result, error) {
	switch s := st.(type) {
	case *CreateStmt:
		return db.create(s)
	case *InsertStmt:
		return db.insert(s)
	case *SelectStmt:
		return db.sel(s)
	case *UpdateStmt:
		return db.update(s)
	case *DeleteStmt:
		return db.del(s)
	case *DropStmt:
		return db.drop(s)
	}
	return nil, fmt.Errorf("minisql: unhandled statement %T", st)
}

func (db *DB) create(s *CreateStmt) (*Result, error) {
	if _, dup := db.tables[s.Table]; dup {
		return nil, fmt.Errorf("minisql: table %q exists", s.Table)
	}
	if len(s.Schema) == 0 {
		return nil, fmt.Errorf("minisql: table %q has no columns", s.Table)
	}
	store, err := db.factory(s.Table, s.Schema)
	if err != nil {
		return nil, err
	}
	db.tables[s.Table] = &table{name: s.Table, schema: s.Schema, store: store}
	return &Result{}, nil
}

func (db *DB) drop(s *DropStmt) (*Result, error) {
	if _, ok := db.tables[s.Table]; !ok {
		return nil, fmt.Errorf("minisql: no table %q", s.Table)
	}
	delete(db.tables, s.Table)
	return &Result{}, nil
}

func (db *DB) table(name string) (*table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("minisql: no table %q", name)
	}
	return t, nil
}

func (db *DB) insert(s *InsertStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	pk := t.schema.PKIndex()
	for _, row := range s.Rows {
		if err := t.schema.checkRow(row); err != nil {
			return nil, err
		}
		if pk >= 0 {
			if _, _, exists, err := t.store.LookupPK(row[pk].I); err != nil {
				return nil, err
			} else if exists {
				return nil, fmt.Errorf("minisql: duplicate primary key %d", row[pk].I)
			}
		}
		if _, err := t.store.Insert(row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(s.Rows)}, nil
}

// compileWhere resolves condition columns and returns a row predicate.
func compileWhere(schema Schema, conds []Cond) (func(row []Value) bool, error) {
	type cc struct {
		idx int
		op  string
		val Value
	}
	compiled := make([]cc, len(conds))
	for i, c := range conds {
		idx := schema.Index(c.Column)
		if idx < 0 {
			return nil, fmt.Errorf("minisql: unknown column %q", c.Column)
		}
		if schema[idx].Kind != c.Val.Kind {
			return nil, fmt.Errorf("minisql: column %s compared with %s literal", c.Column, c.Val.Kind)
		}
		compiled[i] = cc{idx, c.Op, c.Val}
	}
	return func(row []Value) bool {
		for _, c := range compiled {
			v := row[c.idx]
			var keep bool
			switch c.op {
			case "=":
				keep = v.Equal(c.val)
			case "!=":
				keep = !v.Equal(c.val)
			case "<":
				keep = v.Less(c.val)
			case "<=":
				keep = v.Less(c.val) || v.Equal(c.val)
			case ">":
				keep = c.val.Less(v)
			case ">=":
				keep = c.val.Less(v) || v.Equal(c.val)
			}
			if !keep {
				return false
			}
		}
		return true
	}, nil
}

// pkEquality returns the primary-key value when the WHERE clause is a
// single equality on the PK (the indexed fast path).
func pkEquality(schema Schema, conds []Cond) (int64, bool) {
	if len(conds) != 1 || conds[0].Op != "=" {
		return 0, false
	}
	pk := schema.PKIndex()
	if pk < 0 || schema[pk].Name != conds[0].Column || conds[0].Val.Kind != IntKind {
		return 0, false
	}
	return conds[0].Val.I, true
}

func (db *DB) sel(s *SelectStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	// Projection.
	var proj []int
	var colNames []string
	if s.Count {
		colNames = []string{"count(*)"}
	} else if s.Columns == nil {
		for i, c := range t.schema {
			proj = append(proj, i)
			colNames = append(colNames, c.Name)
		}
	} else {
		for _, name := range s.Columns {
			idx := t.schema.Index(name)
			if idx < 0 {
				return nil, fmt.Errorf("minisql: unknown column %q", name)
			}
			proj = append(proj, idx)
			colNames = append(colNames, name)
		}
	}
	res := &Result{Columns: colNames}

	emit := func(row []Value) {
		if s.Count {
			return
		}
		out := make([]Value, len(proj))
		for i, idx := range proj {
			out[i] = row[idx]
		}
		res.Rows = append(res.Rows, out)
	}

	// PK fast path.
	if pkv, ok := pkEquality(t.schema, s.Where); ok {
		row, _, found, err := t.store.LookupPK(pkv)
		if err != nil {
			return nil, err
		}
		count := 0
		if found {
			emit(row)
			count = 1
		}
		if s.Count {
			res.Rows = [][]Value{{IntValue(int64(count))}}
		}
		return res, nil
	}

	pred, err := compileWhere(t.schema, s.Where)
	if err != nil {
		return nil, err
	}
	count := int64(0)
	err = t.store.Scan(func(_ int64, row []Value) (bool, error) {
		if pred(row) {
			count++
			emit(row)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	if s.Count {
		res.Rows = [][]Value{{IntValue(count)}}
	}
	return res, nil
}

func (db *DB) update(s *UpdateStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	// Resolve SET columns.
	type setc struct {
		idx int
		val Value
	}
	var sets []setc
	for col, v := range s.Set {
		idx := t.schema.Index(col)
		if idx < 0 {
			return nil, fmt.Errorf("minisql: unknown column %q", col)
		}
		if t.schema[idx].Kind != v.Kind {
			return nil, fmt.Errorf("minisql: column %s assigned %s", col, v.Kind)
		}
		sets = append(sets, setc{idx, v})
	}
	sort.Slice(sets, func(i, j int) bool { return sets[i].idx < sets[j].idx })
	pred, err := compileWhere(t.schema, s.Where)
	if err != nil {
		return nil, err
	}
	// Collect matching rowids first, then update (stores may not allow
	// mutation during scan).
	type hit struct {
		rowid int64
		row   []Value
	}
	var hits []hit
	err = t.store.Scan(func(rowid int64, row []Value) (bool, error) {
		if pred(row) {
			cp := append([]Value(nil), row...)
			hits = append(hits, hit{rowid, cp})
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, h := range hits {
		for _, sc := range sets {
			h.row[sc.idx] = sc.val
		}
		if err := t.store.Update(h.rowid, h.row); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(hits)}, nil
}

func (db *DB) del(s *DeleteStmt) (*Result, error) {
	t, err := db.table(s.Table)
	if err != nil {
		return nil, err
	}
	pred, err := compileWhere(t.schema, s.Where)
	if err != nil {
		return nil, err
	}
	var ids []int64
	err = t.store.Scan(func(rowid int64, row []Value) (bool, error) {
		if pred(row) {
			ids = append(ids, rowid)
		}
		return true, nil
	})
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if err := t.store.Delete(id); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(ids)}, nil
}

// NativeStore is the default in-process row store with a PK index.
type NativeStore struct {
	rows   map[int64][]Value
	order  []int64
	nextID int64
	pkIdx  map[int64]int64 // pk value -> rowid
	pkCol  int
}

// NewNativeStore creates an empty store. SetPKColumn enables the PK
// index; the DB layer wires it automatically through the factory when
// the schema declares a primary key.
func NewNativeStore() *NativeStore {
	return &NativeStore{rows: make(map[int64][]Value), nextID: 1, pkCol: -1}
}

// NativeFactory creates native stores with PK indexing.
func NativeFactory(_ string, schema Schema) (RowStore, error) {
	s := NewNativeStore()
	if pk := schema.PKIndex(); pk >= 0 {
		s.pkCol = pk
		s.pkIdx = make(map[int64]int64)
	}
	return s, nil
}

// Insert implements RowStore.
func (s *NativeStore) Insert(row []Value) (int64, error) {
	id := s.nextID
	s.nextID++
	cp := append([]Value(nil), row...)
	s.rows[id] = cp
	s.order = append(s.order, id)
	if s.pkCol >= 0 {
		s.pkIdx[row[s.pkCol].I] = id
	}
	return id, nil
}

// Scan implements RowStore.
func (s *NativeStore) Scan(fn func(int64, []Value) (bool, error)) error {
	for _, id := range s.order {
		row, ok := s.rows[id]
		if !ok {
			continue
		}
		cont, err := fn(id, row)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}

// Update implements RowStore.
func (s *NativeStore) Update(rowid int64, row []Value) error {
	old, ok := s.rows[rowid]
	if !ok {
		return fmt.Errorf("minisql: no rowid %d", rowid)
	}
	if s.pkCol >= 0 && old[s.pkCol].I != row[s.pkCol].I {
		delete(s.pkIdx, old[s.pkCol].I)
		s.pkIdx[row[s.pkCol].I] = rowid
	}
	s.rows[rowid] = append([]Value(nil), row...)
	return nil
}

// Delete implements RowStore.
func (s *NativeStore) Delete(rowid int64) error {
	row, ok := s.rows[rowid]
	if !ok {
		return fmt.Errorf("minisql: no rowid %d", rowid)
	}
	if s.pkCol >= 0 {
		delete(s.pkIdx, row[s.pkCol].I)
	}
	delete(s.rows, rowid)
	return nil
}

// LookupPK implements RowStore.
func (s *NativeStore) LookupPK(pk int64) ([]Value, int64, bool, error) {
	if s.pkIdx == nil {
		return nil, 0, false, nil
	}
	id, ok := s.pkIdx[pk]
	if !ok {
		return nil, 0, false, nil
	}
	return s.rows[id], id, true, nil
}
