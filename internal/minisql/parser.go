package minisql

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// CreateStmt is CREATE TABLE.
type CreateStmt struct {
	Table  string
	Schema Schema
}

// InsertStmt is INSERT INTO ... VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Value
}

// Cond is one WHERE conjunct: column <op> literal.
type Cond struct {
	Column string
	Op     string // =, !=, <, <=, >, >=
	Val    Value
}

// SelectStmt is SELECT cols|*|COUNT(*) FROM t [WHERE ...].
type SelectStmt struct {
	Table   string
	Columns []string // nil = *
	Count   bool
	Where   []Cond
}

// UpdateStmt is UPDATE t SET c = v [, ...] [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   map[string]Value
	Where []Cond
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where []Cond
}

// DropStmt is DROP TABLE t.
type DropStmt struct {
	Table string
}

func (*CreateStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*SelectStmt) stmt() {}
func (*UpdateStmt) stmt() {}
func (*DeleteStmt) stmt() {}
func (*DropStmt) stmt()   {}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("minisql: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return st, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// accept consumes the token when it matches the keyword or symbol.
func (p *parser) accept(text string) bool {
	t := p.cur()
	if (t.kind == tokIdent || t.kind == tokSymbol) && strings.EqualFold(t.text, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return fmt.Errorf("minisql: expected %q at %d, got %q", text, p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("minisql: expected identifier at %d, got %q", t.pos, t.text)
	}
	p.pos++
	return strings.ToLower(t.text), nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.accept("create"):
		return p.create()
	case p.accept("insert"):
		return p.insert()
	case p.accept("select"):
		return p.sel()
	case p.accept("update"):
		return p.update()
	case p.accept("delete"):
		return p.del()
	case p.accept("drop"):
		return p.drop()
	}
	return nil, fmt.Errorf("minisql: unknown statement %q", p.cur().text)
}

func (p *parser) create() (Statement, error) {
	if err := p.expect("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var schema Schema
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		kindTok, err := p.ident()
		if err != nil {
			return nil, err
		}
		var kind Kind
		switch kindTok {
		case "int", "integer":
			kind = IntKind
		case "text", "varchar":
			kind = TextKind
		default:
			return nil, fmt.Errorf("minisql: unknown type %q", kindTok)
		}
		c := Column{Name: col, Kind: kind}
		if p.accept("primary") {
			if err := p.expect("key"); err != nil {
				return nil, err
			}
			c.PrimaryKey = true
		}
		schema = append(schema, c)
		if p.accept(",") {
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	pkCount := 0
	for _, c := range schema {
		if c.PrimaryKey {
			pkCount++
			if c.Kind != IntKind {
				return nil, fmt.Errorf("minisql: primary key %s must be INT", c.Name)
			}
		}
	}
	if pkCount > 1 {
		return nil, fmt.Errorf("minisql: multiple primary keys")
	}
	return &CreateStmt{Table: name, Schema: schema}, nil
}

func (p *parser) literal() (Value, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("minisql: bad number %q", t.text)
		}
		return IntValue(v), nil
	case tokString:
		p.pos++
		return TextValue(t.text), nil
	}
	return Value{}, fmt.Errorf("minisql: expected literal at %d, got %q", t.pos, t.text)
}

func (p *parser) insert() (Statement, error) {
	if err := p.expect("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("values"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	for {
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.accept(",") {
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.accept(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) where() ([]Cond, error) {
	if !p.accept("where") {
		return nil, nil
	}
	var conds []Cond
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		opTok := p.cur()
		if opTok.kind != tokSymbol {
			return nil, fmt.Errorf("minisql: expected operator at %d", opTok.pos)
		}
		op := opTok.text
		switch op {
		case "=", "!=", "<", "<=", ">", ">=":
			p.pos++
		default:
			return nil, fmt.Errorf("minisql: unknown operator %q", op)
		}
		val, err := p.literal()
		if err != nil {
			return nil, err
		}
		conds = append(conds, Cond{Column: col, Op: op, Val: val})
		if p.accept("and") {
			continue
		}
		break
	}
	return conds, nil
}

func (p *parser) sel() (Statement, error) {
	st := &SelectStmt{}
	switch {
	case p.accept("*"):
	case p.accept("count"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if err := p.expect("*"); err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		st.Count = true
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if p.accept(",") {
				continue
			}
			break
		}
	}
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Table = name
	st.Where, err = p.where()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) update() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("set"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name, Set: make(map[string]Value)}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		st.Set[col] = v
		if p.accept(",") {
			continue
		}
		break
	}
	st.Where, err = p.where()
	if err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) del() (Statement, error) {
	if err := p.expect("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.where()
	if err != nil {
		return nil, err
	}
	return &DeleteStmt{Table: name, Where: where}, nil
}

func (p *parser) drop() (Statement, error) {
	if err := p.expect("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropStmt{Table: name}, nil
}
