package minisql

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func mustExec(t *testing.T, db *DB, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelect(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE users (id INT PRIMARY KEY, name TEXT, age INT)")
	mustExec(t, db, "INSERT INTO users VALUES (1, 'ada', 36), (2, 'alan', 41)")
	res := mustExec(t, db, "SELECT * FROM users")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Columns[1] != "name" || res.Rows[0][1].S != "ada" {
		t.Errorf("row0 = %v", res.Rows[0])
	}
}

func TestWhereOperators(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'z'), (4,'y')")
	cases := []struct {
		where string
		want  int
	}{
		{"a = 2", 1},
		{"a != 2", 3},
		{"a < 3", 2},
		{"a <= 3", 3},
		{"a > 3", 1},
		{"a >= 3", 2},
		{"b = 'y'", 2},
		{"a > 1 AND b = 'y'", 2},
		{"a > 2 AND b = 'y'", 1},
	}
	for _, c := range cases {
		res := mustExec(t, db, "SELECT COUNT(*) FROM t WHERE "+c.where)
		if got := res.Rows[0][0].I; got != int64(c.want) {
			t.Errorf("WHERE %s: count = %d, want %d", c.where, got, c.want)
		}
	}
}

func TestProjection(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT, c INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 'q', 9)")
	res := mustExec(t, db, "SELECT c, a FROM t")
	if len(res.Columns) != 2 || res.Columns[0] != "c" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Rows[0][0].I != 9 || res.Rows[0][1].I != 1 {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestUpdateAndDelete(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
	res := mustExec(t, db, "UPDATE t SET v = 99 WHERE id >= 2")
	if res.Affected != 2 {
		t.Errorf("update affected %d", res.Affected)
	}
	sel := mustExec(t, db, "SELECT v FROM t WHERE id = 3")
	if sel.Rows[0][0].I != 99 {
		t.Errorf("v = %d", sel.Rows[0][0].I)
	}
	del := mustExec(t, db, "DELETE FROM t WHERE v = 99")
	if del.Affected != 2 {
		t.Errorf("delete affected %d", del.Affected)
	}
	cnt := mustExec(t, db, "SELECT COUNT(*) FROM t")
	if cnt.Rows[0][0].I != 1 {
		t.Errorf("count = %d", cnt.Rows[0][0].I)
	}
}

func TestPrimaryKeyEnforcedAndIndexed(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE t (id INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO t VALUES (7, 70)")
	if _, err := db.Exec("INSERT INTO t VALUES (7, 71)"); err == nil {
		t.Error("duplicate PK accepted")
	}
	res := mustExec(t, db, "SELECT v FROM t WHERE id = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 70 {
		t.Errorf("indexed lookup = %v", res.Rows)
	}
	// Missing key.
	res2 := mustExec(t, db, "SELECT v FROM t WHERE id = 8")
	if len(res2.Rows) != 0 {
		t.Errorf("phantom row %v", res2.Rows)
	}
}

func TestTypeChecking(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE t (a INT, b TEXT)")
	if _, err := db.Exec("INSERT INTO t VALUES ('x', 'y')"); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Exec("SELECT * FROM t WHERE a = 'txt'"); err == nil {
		t.Error("mistyped WHERE accepted")
	}
	if _, err := db.Exec("SELECT nope FROM t"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Exec("SELECT * FROM ghost"); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestParserErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"CREATE TABLE t",
		"CREATE TABLE t (a BLOB)",
		"CREATE TABLE t (a TEXT PRIMARY KEY)",
		"CREATE TABLE t (a INT PRIMARY KEY, b INT PRIMARY KEY)",
		"INSERT INTO t VALUES",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE a ~ 1",
		"INSERT INTO t VALUES (1) garbage",
		"SELECT * FROM t WHERE a = 'unterminated",
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("parsed invalid SQL: %q", sql)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE t (s TEXT)")
	mustExec(t, db, "INSERT INTO t VALUES ('it''s')")
	res := mustExec(t, db, "SELECT * FROM t")
	if res.Rows[0][0].S != "it's" {
		t.Errorf("escaped string = %q", res.Rows[0][0].S)
	}
}

func TestDropTable(t *testing.T) {
	db := NewDB(nil)
	mustExec(t, db, "CREATE TABLE t (a INT)")
	mustExec(t, db, "DROP TABLE t")
	if _, err := db.Exec("SELECT * FROM t"); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := db.Exec("DROP TABLE t"); err == nil {
		t.Error("double drop succeeded")
	}
	// Name can be reused.
	mustExec(t, db, "CREATE TABLE t (a INT)")
}

func TestWasmStoreMatchesNative(t *testing.T) {
	// The same workload must produce identical results on both stores —
	// the Twine functional-equivalence property.
	nativeDB := NewDB(nil)
	wasmDB := NewDB(WasmFactory)
	ddl := "CREATE TABLE kv (k INT PRIMARY KEY, v INT)"
	mustExec(t, nativeDB, ddl)
	mustExec(t, wasmDB, ddl)

	stmts := []string{
		"INSERT INTO kv VALUES (1, 100), (2, 200), (3, 300)",
		"INSERT INTO kv VALUES (10, 42)",
		"UPDATE kv SET v = 201 WHERE k = 2",
		"DELETE FROM kv WHERE k = 3",
	}
	for _, s := range stmts {
		mustExec(t, nativeDB, s)
		mustExec(t, wasmDB, s)
	}
	queries := []string{
		"SELECT COUNT(*) FROM kv",
		"SELECT * FROM kv",
		"SELECT v FROM kv WHERE k = 2",
		"SELECT v FROM kv WHERE k = 3",
		"SELECT k FROM kv WHERE v > 100",
	}
	for _, q := range queries {
		a := mustExec(t, nativeDB, q)
		b := mustExec(t, wasmDB, q)
		if fmt.Sprint(a.Rows) != fmt.Sprint(b.Rows) {
			t.Errorf("%s: native %v != wasm %v", q, a.Rows, b.Rows)
		}
	}
}

func TestWasmStoreRejectsNonKVSchema(t *testing.T) {
	db := NewDB(WasmFactory)
	if _, err := db.Exec("CREATE TABLE t (a TEXT)"); err == nil {
		t.Error("wasm store accepted TEXT table")
	}
	if _, err := db.Exec("CREATE TABLE t (a INT, b INT)"); err == nil {
		t.Error("wasm store accepted table without PK")
	}
}

func TestWasmStoreDuplicatePK(t *testing.T) {
	db := NewDB(WasmFactory)
	mustExec(t, db, "CREATE TABLE kv (k INT PRIMARY KEY, v INT)")
	mustExec(t, db, "INSERT INTO kv VALUES (5, 1)")
	if _, err := db.Exec("INSERT INTO kv VALUES (5, 2)"); err == nil {
		t.Error("duplicate PK accepted by wasm store")
	}
}

func TestWasmStoreVMExecutes(t *testing.T) {
	// Confirm the data plane really runs in the VM: instruction count
	// grows with operations.
	store, err := NewWasmStore(Schema{
		{Name: "k", Kind: IntKind, PrimaryKey: true},
		{Name: "v", Kind: IntKind},
	})
	if err != nil {
		t.Fatal(err)
	}
	before := store.VM().Executed
	for i := int64(1); i <= 100; i++ {
		if _, err := store.Insert([]Value{IntValue(i), IntValue(i * 10)}); err != nil {
			t.Fatal(err)
		}
	}
	mid := store.VM().Executed
	if mid <= before {
		t.Fatal("inserts executed no VM instructions")
	}
	for i := int64(1); i <= 100; i++ {
		row, _, ok, err := store.LookupPK(i)
		if err != nil || !ok {
			t.Fatalf("lookup %d: %v, %v", i, ok, err)
		}
		if row[1].I != i*10 {
			t.Fatalf("lookup %d = %d", i, row[1].I)
		}
	}
	if store.VM().Executed <= mid {
		t.Fatal("lookups executed no VM instructions")
	}
}

func TestWasmStorePropertyAgainstMap(t *testing.T) {
	// Random put/get/del sequences agree with a Go map reference.
	store, err := NewWasmStore(Schema{
		{Name: "k", Kind: IntKind, PrimaryKey: true},
		{Name: "v", Kind: IntKind},
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[int64]int64{}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			k := int64(op%199) + 1
			switch op % 3 {
			case 0: // put
				v := int64(op) * 7
				if _, ok := ref[k]; ok {
					if err := store.Update(k, []Value{IntValue(k), IntValue(v)}); err != nil {
						return false
					}
				} else if _, err := store.Insert([]Value{IntValue(k), IntValue(v)}); err != nil {
					return false
				}
				ref[k] = v
			case 1: // get
				row, _, ok, err := store.LookupPK(k)
				if err != nil {
					return false
				}
				want, exists := ref[k]
				if ok != exists {
					return false
				}
				if ok && row[1].I != want {
					return false
				}
			case 2: // del
				if _, exists := ref[k]; exists {
					if err := store.Delete(k); err != nil {
						return false
					}
					delete(ref, k)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValueString(t *testing.T) {
	if IntValue(5).String() != "5" || TextValue("a").String() != "'a'" {
		t.Error("bad literal rendering")
	}
	if !strings.EqualFold(IntKind.String(), "int") || !strings.EqualFold(TextKind.String(), "text") {
		t.Error("bad kind names")
	}
}
