// Package minisql is a small embedded SQL engine — the reproduction's
// stand-in for SQLite in the Twine experiment (§IV-C, [17]): "SQLite
// can be fully executed inside an SGX enclave via WebAssembly ... with
// small performance overheads".
//
// The engine supports CREATE TABLE / INSERT / SELECT / UPDATE / DELETE
// with WHERE conjunctions over INT and TEXT columns, and a pluggable
// row store: the native in-process store, or a store whose data plane
// runs inside the wasm VM (and, composed with internal/tee, inside a
// simulated enclave). Query parsing and planning are identical across
// backends, so measured differences isolate the runtime, exactly like
// the paper's native / WASM / WASM+SGX comparison.
package minisql

import (
	"fmt"
	"strconv"
)

// Kind is a column/value type.
type Kind int

// Value kinds.
const (
	IntKind Kind = iota
	TextKind
)

// String names the kind as in DDL.
func (k Kind) String() string {
	if k == TextKind {
		return "TEXT"
	}
	return "INT"
}

// Value is one cell.
type Value struct {
	Kind Kind
	I    int64
	S    string
}

// IntValue builds an INT value.
func IntValue(v int64) Value { return Value{Kind: IntKind, I: v} }

// TextValue builds a TEXT value.
func TextValue(s string) Value { return Value{Kind: TextKind, S: s} }

// String renders the value as a literal.
func (v Value) String() string {
	if v.Kind == TextKind {
		return "'" + v.S + "'"
	}
	return strconv.FormatInt(v.I, 10)
}

// Equal compares two values of the same kind.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	if v.Kind == TextKind {
		return v.S == o.S
	}
	return v.I == o.I
}

// Less orders two values of the same kind.
func (v Value) Less(o Value) bool {
	if v.Kind == TextKind {
		return v.S < o.S
	}
	return v.I < o.I
}

// Column describes one table column.
type Column struct {
	Name       string
	Kind       Kind
	PrimaryKey bool
}

// Schema is an ordered column list.
type Schema []Column

// Index returns the position of a named column or -1.
func (s Schema) Index(name string) int {
	for i, c := range s {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// PKIndex returns the primary-key column position or -1.
func (s Schema) PKIndex() int {
	for i, c := range s {
		if c.PrimaryKey {
			return i
		}
	}
	return -1
}

// checkRow validates arity and kinds against the schema.
func (s Schema) checkRow(row []Value) error {
	if len(row) != len(s) {
		return fmt.Errorf("minisql: %d values for %d columns", len(row), len(s))
	}
	for i, v := range row {
		if v.Kind != s[i].Kind {
			return fmt.Errorf("minisql: column %s wants %s, got %s", s[i].Name, s[i].Kind, v.Kind)
		}
	}
	return nil
}
