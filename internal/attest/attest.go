// Package attest implements the end-to-end remote attestation the
// paper develops (§IV-C): a hardware root of trust, a measured secure
// boot chain, and a nonce challenge-response protocol between a
// verifier and an edge device, run over TCP. It is the trust anchor
// the PAEB use case requires before a car offloads raw sensor data to
// an edge station (§V-A).
package attest

import (
	"bufio"
	"context"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"net"
	"time"
)

// HandshakeTimeout bounds one attestation exchange on the prover side.
// Without it an accepted connection that never sends a challenge (a
// half-dead verifier, a port scanner) would pin a goroutine forever.
const HandshakeTimeout = 10 * time.Second

// BootStage is one measured stage of the boot chain.
type BootStage struct {
	Name  string
	Image []byte
}

// MeasureChain computes the chained measurement of a secure boot:
// m_0 = H(stage_0), m_i = H(m_{i-1} || H(stage_i)).
func MeasureChain(stages []BootStage) [32]byte {
	var m [32]byte
	for i, s := range stages {
		img := sha256.Sum256(s.Image)
		if i == 0 {
			m = sha256.Sum256(img[:])
			continue
		}
		h := sha256.New()
		h.Write(m[:])
		h.Write(img[:])
		copy(m[:], h.Sum(nil))
	}
	return m
}

// RootOfTrust is the manufacturer key that endorses device keys.
type RootOfTrust struct {
	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
}

// NewRootOfTrust generates a fresh root key pair.
func NewRootOfTrust() (*RootOfTrust, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &RootOfTrust{pub: pub, priv: priv}, nil
}

// Public returns the root verification key (pre-shared with verifiers).
func (r *RootOfTrust) Public() ed25519.PublicKey { return r.pub }

// Endorse signs a device public key, producing its certificate.
func (r *RootOfTrust) Endorse(devicePub ed25519.PublicKey) []byte {
	return ed25519.Sign(r.priv, devicePub)
}

// Device is one attestable edge node.
type Device struct {
	Name string

	pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	cert []byte // root signature over pub

	measurement [32]byte
	// tampered simulates a compromised boot stage for negative tests.
	tampered bool
}

// NewDevice provisions a device: generates its key, endorses it with
// the root, and measures the boot chain.
func NewDevice(name string, root *RootOfTrust, boot []BootStage) (*Device, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, err
	}
	return &Device{
		Name:        name,
		pub:         pub,
		priv:        priv,
		cert:        root.Endorse(pub),
		measurement: MeasureChain(boot),
	}, nil
}

// Measurement returns the device's boot measurement.
func (d *Device) Measurement() [32]byte { return d.measurement }

// Tamper simulates a supply-chain or runtime compromise that changes
// the effective measurement reported by honest hardware.
func (d *Device) Tamper() {
	d.tampered = true
	d.measurement[0] ^= 0xff
}

// Evidence is the attestation response.
type Evidence struct {
	Device      string   `json:"device"`
	Measurement [32]byte `json:"measurement"`
	Nonce       []byte   `json:"nonce"`
	DevicePub   []byte   `json:"device_pub"`
	Cert        []byte   `json:"cert"`
	Sig         []byte   `json:"sig"`
}

// challenge is the verifier's message.
type challenge struct {
	Nonce []byte `json:"nonce"`
}

func evidenceMessage(meas [32]byte, nonce []byte) []byte {
	h := sha256.New()
	h.Write([]byte("vedliot-attest-v1"))
	h.Write(meas[:])
	h.Write(nonce)
	return h.Sum(nil)
}

// Respond produces evidence for a challenge nonce.
func (d *Device) Respond(nonce []byte) Evidence {
	return Evidence{
		Device:      d.Name,
		Measurement: d.measurement,
		Nonce:       append([]byte(nil), nonce...),
		DevicePub:   append([]byte(nil), d.pub...),
		Cert:        append([]byte(nil), d.cert...),
		Sig:         ed25519.Sign(d.priv, evidenceMessage(d.measurement, nonce)),
	}
}

// Verifier checks evidence against the root key and a policy of known
// good measurements.
type Verifier struct {
	rootPub ed25519.PublicKey
	allowed map[[32]byte]bool
}

// NewVerifier creates a verifier trusting the given root and accepting
// the listed measurements.
func NewVerifier(rootPub ed25519.PublicKey, goodMeasurements ...[32]byte) *Verifier {
	v := &Verifier{rootPub: rootPub, allowed: make(map[[32]byte]bool)}
	for _, m := range goodMeasurements {
		v.allowed[m] = true
	}
	return v
}

// Verify validates evidence against a nonce: certificate chain, device
// signature, nonce freshness and measurement policy.
func (v *Verifier) Verify(ev Evidence, nonce []byte) error {
	if len(ev.DevicePub) != ed25519.PublicKeySize {
		return fmt.Errorf("attest: bad device key length %d", len(ev.DevicePub))
	}
	if !ed25519.Verify(v.rootPub, ev.DevicePub, ev.Cert) {
		return fmt.Errorf("attest: device certificate not endorsed by root")
	}
	if string(ev.Nonce) != string(nonce) {
		return fmt.Errorf("attest: stale or replayed nonce")
	}
	if !ed25519.Verify(ed25519.PublicKey(ev.DevicePub), evidenceMessage(ev.Measurement, nonce), ev.Sig) {
		return fmt.Errorf("attest: bad evidence signature")
	}
	if !v.allowed[ev.Measurement] {
		return fmt.Errorf("attest: measurement not in policy")
	}
	return nil
}

// Serve runs the prover side on a listener until it closes. Each
// connection receives one challenge and returns one evidence message.
func Serve(l net.Listener, d *Device) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			_ = c.SetDeadline(time.Now().Add(HandshakeTimeout))
			var ch challenge
			r := bufio.NewReader(c)
			line, err := r.ReadBytes('\n')
			if err != nil {
				return
			}
			if json.Unmarshal(line, &ch) != nil {
				return
			}
			ev := d.Respond(ch.Nonce)
			out, err := json.Marshal(ev)
			if err != nil {
				return
			}
			out = append(out, '\n')
			_, _ = c.Write(out)
		}(conn)
	}
}

// Attest runs the verifier side against addr: it sends a fresh nonce,
// reads the evidence, verifies it, and returns the round-trip latency.
func (v *Verifier) Attest(addr string, timeout time.Duration) (Evidence, time.Duration, error) {
	return v.AttestCtx(context.Background(), addr, timeout)
}

// AttestCtx is Attest bound to a caller context. The timeout caps the
// whole exchange (dial included) as a connection deadline, so a device
// that accepts but never responds fails the attestation instead of
// hanging a deployment; cancelling the context aborts the exchange
// immediately by forcing the deadline into the past.
func (v *Verifier) AttestCtx(ctx context.Context, addr string, timeout time.Duration) (Evidence, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return Evidence{}, 0, err
	}
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return Evidence{}, 0, err
	}
	start := time.Now()
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Evidence{}, 0, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	stop := context.AfterFunc(ctx, func() {
		_ = conn.SetDeadline(time.Unix(1, 0))
	})
	defer stop()

	out, err := json.Marshal(challenge{Nonce: nonce})
	if err != nil {
		return Evidence{}, 0, err
	}
	out = append(out, '\n')
	if _, err := conn.Write(out); err != nil {
		return Evidence{}, 0, ctxOr(ctx, err)
	}
	line, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		return Evidence{}, 0, ctxOr(ctx, err)
	}
	var ev Evidence
	if err := json.Unmarshal(line, &ev); err != nil {
		return Evidence{}, 0, err
	}
	rtt := time.Since(start)
	if err := v.Verify(ev, nonce); err != nil {
		return ev, rtt, err
	}
	return ev, rtt, nil
}

// ctxOr prefers the context's error over a transport error it caused:
// a cancelled exchange reports context.Canceled, not the synthetic
// deadline the cancellation forced onto the connection.
func ctxOr(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}
