package attest

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func bootChain(appVersion string) []BootStage {
	return []BootStage{
		{Name: "bootloader", Image: []byte("bl-1.0")},
		{Name: "os", Image: []byte("optee-3.19")},
		{Name: "app", Image: []byte(appVersion)},
	}
}

func TestMeasureChainSensitivity(t *testing.T) {
	a := MeasureChain(bootChain("monitor-1.0"))
	b := MeasureChain(bootChain("monitor-1.0"))
	c := MeasureChain(bootChain("monitor-1.1"))
	if a != b {
		t.Error("same chain, different measurement")
	}
	if a == c {
		t.Error("modified app stage not reflected")
	}
	// Order matters.
	rev := []BootStage{bootChain("monitor-1.0")[2], bootChain("monitor-1.0")[1], bootChain("monitor-1.0")[0]}
	if MeasureChain(rev) == a {
		t.Error("stage order not captured")
	}
}

func TestLocalVerify(t *testing.T) {
	root, err := NewRootOfTrust()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice("edge-0", root, bootChain("monitor-1.0"))
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(root.Public(), dev.Measurement())
	nonce := []byte("nonce-1")
	ev := dev.Respond(nonce)
	if err := v.Verify(ev, nonce); err != nil {
		t.Fatal(err)
	}
	// Replayed nonce rejected.
	if err := v.Verify(ev, []byte("nonce-2")); err == nil {
		t.Error("replay accepted")
	}
}

func TestTamperedDeviceRejected(t *testing.T) {
	root, _ := NewRootOfTrust()
	dev, err := NewDevice("edge-0", root, bootChain("monitor-1.0"))
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(root.Public(), MeasureChain(bootChain("monitor-1.0")))
	dev.Tamper()
	nonce := []byte("n")
	if err := v.Verify(dev.Respond(nonce), nonce); err == nil {
		t.Error("tampered device attested successfully")
	}
}

func TestUnendorsedDeviceRejected(t *testing.T) {
	root, _ := NewRootOfTrust()
	rogueRoot, _ := NewRootOfTrust()
	dev, err := NewDevice("rogue", rogueRoot, bootChain("monitor-1.0"))
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(root.Public(), dev.Measurement())
	nonce := []byte("n")
	if err := v.Verify(dev.Respond(nonce), nonce); err == nil {
		t.Error("device endorsed by a different root accepted")
	}
}

func TestEvidenceSignatureBindsMeasurement(t *testing.T) {
	root, _ := NewRootOfTrust()
	dev, _ := NewDevice("edge", root, bootChain("monitor-1.0"))
	good := MeasureChain(bootChain("monitor-1.0"))
	v := NewVerifier(root.Public(), good)
	nonce := []byte("n")
	ev := dev.Respond(nonce)
	// An attacker rewriting the measurement field breaks the signature.
	ev.Measurement[0] ^= 1
	ev.Measurement[0] ^= 1 // restore: baseline must pass
	if err := v.Verify(ev, nonce); err != nil {
		t.Fatal(err)
	}
	forged := dev.Respond(nonce)
	forged.Measurement = good
	forged.Measurement[5] ^= 0xaa
	if err := v.Verify(forged, nonce); err == nil {
		t.Error("rewritten measurement accepted")
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	root, err := NewRootOfTrust()
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevice("edge-tcp", root, bootChain("monitor-2.0"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go Serve(l, dev)

	v := NewVerifier(root.Public(), dev.Measurement())
	ev, rtt, err := v.Attest(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Device != "edge-tcp" {
		t.Errorf("device = %q", ev.Device)
	}
	if rtt <= 0 {
		t.Error("non-positive RTT")
	}

	// A verifier with a different policy must reject the same device.
	var other [32]byte
	strict := NewVerifier(root.Public(), other)
	if _, _, err := strict.Attest(l.Addr().String(), 5*time.Second); err == nil {
		t.Error("out-of-policy measurement attested")
	}
}

func TestAttestDeadDeviceTimesOut(t *testing.T) {
	root, err := NewRootOfTrust()
	if err != nil {
		t.Fatal(err)
	}
	// A listener that accepts and then goes silent — the failure mode a
	// crashed prover or a firewalled half-open connection produces.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold open, never respond
		}
	}()

	v := NewVerifier(root.Public())
	start := time.Now()
	if _, _, err := v.Attest(l.Addr().String(), 200*time.Millisecond); err == nil {
		t.Fatal("attesting a dead device succeeded")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("dead device held the verifier for %v", waited)
	}
}

func TestAttestCtxCancelAborts(t *testing.T) {
	root, err := NewRootOfTrust()
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // silent prover again
		}
	}()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	v := NewVerifier(root.Public())
	go func() {
		_, _, err := v.AttestCtx(ctx, l.Addr().String(), time.Hour)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled attest returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancel did not abort the attestation")
	}
	// An already-cancelled context short-circuits before dialing.
	if _, _, err := v.AttestCtx(ctx, l.Addr().String(), time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled attest returned %v", err)
	}
}
