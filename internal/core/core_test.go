package core

import (
	"testing"

	"vedliot/internal/accel"
	"vedliot/internal/fabric"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func TestPlanDeploymentSmartMirror(t *testing.T) {
	// The smart-mirror object detector: ~30 FPS deadline, uRECS power
	// envelope, INT8. An embedded accelerator must be selected.
	uc := UseCase{
		Name:  "smart-mirror-objects",
		Model: nn.YoloV4Tiny(416, 80, nn.BuildOptions{}),
		Req: Requirements{
			LatencyMS: 33,
			PowerW:    15,
			Precision: tensor.INT8,
			Tier:      "embedded/far edge",
		},
	}
	dep, err := PlanDeployment(uc)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Device == nil {
		t.Fatal("no device selected")
	}
	if dep.M.LatencyMS > 33 {
		t.Errorf("deadline violated: %.1f ms on %s", dep.M.LatencyMS, dep.Device.Name)
	}
	if dep.Device.MaxW > 15 {
		t.Errorf("power envelope violated: %s at %.1f W", dep.Device.Name, dep.Device.MaxW)
	}
	if dep.CoDesigned {
		t.Error("off-the-shelf part should suffice for yolov4-tiny")
	}
	if dep.Module == "" || dep.Chassis == "" {
		t.Errorf("platform mapping incomplete: module=%q chassis=%q", dep.Module, dep.Chassis)
	}
	if dep.Chassis != "uRECS" {
		t.Errorf("chassis = %s, want uRECS for the embedded tier", dep.Chassis)
	}
}

func TestPlanDeploymentFallsBackToCoDesign(t *testing.T) {
	// A tiny 1-D CNN under a milliwatt-class power envelope: nothing in
	// the catalogue fits, so the class-4 co-design path must engage.
	uc := UseCase{
		Name:  "motor-box",
		Model: nn.MotorNet(256, 5, nn.BuildOptions{Weights: true, Seed: 5}),
		Req: Requirements{
			LatencyMS: 50,
			PowerW:    0.02, // below every catalogue device
			Precision: tensor.INT8,
		},
	}
	dep, err := PlanDeployment(uc)
	if err != nil {
		// Either a feasible co-design or a clear infeasibility report
		// is acceptable for this extreme envelope; an error must at
		// least identify the use case.
		t.Skipf("co-design infeasible at 20 mW: %v", err)
	}
	if !dep.CoDesigned {
		t.Errorf("expected co-design, got %s", dep.Device.Name)
	}
	if dep.M.PowerW > 0.02 {
		t.Errorf("co-design exceeded envelope: %.3f W", dep.M.PowerW)
	}
}

func TestPlanDeploymentValidation(t *testing.T) {
	if _, err := PlanDeployment(UseCase{Name: "x"}); err == nil {
		t.Error("missing model accepted")
	}
	uc := UseCase{Name: "x", Model: nn.MotorNet(64, 5, nn.BuildOptions{})}
	if _, err := PlanDeployment(uc); err == nil {
		t.Error("missing constraints accepted")
	}
}

func TestPlanDeploymentInfeasible(t *testing.T) {
	// YoloV4@608 in 0.1 ms under 1 W is impossible even for co-design.
	uc := UseCase{
		Name:  "impossible",
		Model: nn.YoloV4(608, 80, nn.BuildOptions{}),
		Req:   Requirements{LatencyMS: 0.1, PowerW: 1, Precision: tensor.INT8},
	}
	if _, err := PlanDeployment(uc); err == nil {
		t.Error("impossible constraints accepted")
	}
}

func TestPlanOffloadCrossover(t *testing.T) {
	// The PAEB decision: over LTE the car should run locally; over a
	// good 5G link offloading to a faster edge saves on-car energy.
	g := nn.YoloV4(416, 80, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		t.Fatal(err)
	}
	onCar, _ := accel.FindDevice("Xavier NX")
	edge, _ := accel.FindDevice("GTX1660")
	const (
		frameBytes  = 500_000 // compressed camera frame
		resultBytes = 2_000
		deadlineMS  = 100
		radioTxW    = 2.5
	)
	lte, err := PlanOffload(w, onCar, edge, tensor.INT8, fabric.LTE, frameBytes, resultBytes, deadlineMS, radioTxW)
	if err != nil {
		t.Fatal(err)
	}
	mmw, err := PlanOffload(w, onCar, edge, tensor.INT8, fabric.NR5GmmWave, frameBytes, resultBytes, deadlineMS, radioTxW)
	if err != nil {
		t.Fatal(err)
	}
	if lte.Offload {
		t.Errorf("LTE plan offloads (edge %.1f ms vs local %.1f ms)", lte.EdgeMS, lte.LocalMS)
	}
	if !mmw.Offload {
		t.Errorf("mmWave plan stays local (edge %.1f ms, car energy %.0f vs %.0f mJ)",
			mmw.EdgeMS, mmw.CarEnergyOffloadMJ, mmw.CarEnergyLocalMJ)
	}
	if !mmw.MeetsDeadline {
		t.Error("mmWave offload missed the deadline")
	}
	// Offload latency decomposition must add up.
	sum := mmw.UplinkMS + mmw.EdgeComputeMS + mmw.DownlinkMS
	if sum != mmw.EdgeMS {
		t.Errorf("breakdown %.2f != total %.2f", sum, mmw.EdgeMS)
	}
}

func TestRankDevices(t *testing.T) {
	g := nn.MobileNetV3(224, nn.BuildOptions{})
	if err := g.InferShapes(1); err != nil {
		t.Fatal(err)
	}
	w, err := accel.WorkloadFromGraph(g, tensor.INT8)
	if err != nil {
		t.Fatal(err)
	}
	ranked := RankDevices(w, tensor.INT8, 50, 0)
	if len(ranked) < 3 {
		t.Fatalf("only %d feasible devices", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].EnergyPerInferenceMJ() < ranked[i-1].EnergyPerInferenceMJ() {
			t.Error("ranking not sorted by energy")
		}
	}
	// A power cap removes desktop GPUs.
	capped := RankDevices(w, tensor.INT8, 50, 16)
	for _, m := range capped {
		if m.Device == "GTX1660" {
			t.Error("power cap ignored")
		}
	}
}
