// Package core implements the VEDLIoT design flow — the paper's primary
// contribution as an executable artifact (Fig. 1): given a use case's
// deep-learning model and its latency/power/tier requirements, the flow
// optimizes the model with the toolchain (§III), evaluates candidate
// accelerators with the performance models (§II-C), selects microserver
// modules and a RECS chassis (§II-A), and — for the automotive use case
// — plans on-car versus edge offloading over modeled networks (§V-A).
package core

import (
	"fmt"
	"math"
	"sort"

	"vedliot/internal/accel"
	"vedliot/internal/fabric"
	"vedliot/internal/kenning"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// Requirements bound a use-case deployment.
type Requirements struct {
	// LatencyMS is the per-inference deadline.
	LatencyMS float64
	// PowerW is the accelerator power envelope.
	PowerW float64
	// Tier restricts the chassis ("embedded/far edge", "near edge",
	// "cloud", "" = any).
	Tier string
	// Precision is the deployment precision.
	Precision tensor.DType
	// Quantize runs PTQ when the precision is INT8.
	Quantize bool
	// CalibrationSamples are inputs run through the optimized graph to
	// derive the activation QuantSchema (Deployment.Pipeline.Schema) —
	// the artifact the native INT8 runtime and .vedz deployment
	// packages consume. Empty skips calibration.
	CalibrationSamples []map[string]*tensor.Tensor
	// Prune applies magnitude pruning at this sparsity when > 0.
	Prune float64
}

// UseCase couples a model with its requirements.
type UseCase struct {
	Name  string
	Model *nn.Graph
	Req   Requirements
}

// Deployment is the design-flow outcome.
type Deployment struct {
	UseCase string
	// Device is the chosen accelerator model.
	Device *accel.Device
	// M is the predicted operating point.
	M accel.Measurement
	// Module and Chassis place the device in the RECS platform (empty
	// when the device maps to no catalogue module, e.g. co-designed
	// FPGA overlays).
	Module  string
	Chassis string
	// Pipeline reports the toolchain work.
	Pipeline kenning.PipelineReport
	// CoDesigned marks a class-4 accelerator synthesized because no
	// off-the-shelf part met the constraints.
	CoDesigned bool
}

// PlanDeployment runs the full design flow for a use case. The model is
// optimized in place.
func PlanDeployment(uc UseCase) (Deployment, error) {
	dep := Deployment{UseCase: uc.Name}
	if uc.Model == nil {
		return dep, fmt.Errorf("core: use case %q has no model", uc.Name)
	}
	req := uc.Req
	if req.LatencyMS <= 0 || req.PowerW <= 0 {
		return dep, fmt.Errorf("core: use case %q needs positive latency and power bounds", uc.Name)
	}

	// Toolchain (§III): graph surgery, optional pruning + quantization.
	pcfg := kenning.PipelineConfig{Prune: req.Prune, CalibrationSamples: req.CalibrationSamples}
	if req.Quantize && req.Precision == tensor.INT8 {
		pcfg.Quantize = true
		pcfg.Granularity = optimize.PerChannel
	}
	prep, err := kenning.RunPipeline(uc.Model, pcfg)
	if err != nil {
		return dep, err
	}
	dep.Pipeline = prep

	if err := uc.Model.InferShapes(1); err != nil {
		return dep, err
	}
	w, err := accel.WorkloadFromGraph(uc.Model, req.Precision)
	if err != nil {
		return dep, err
	}

	// Candidate accelerators (§II-C evaluation flow): minimize energy
	// per inference among devices meeting both constraints.
	var best *accel.Device
	var bestM accel.Measurement
	bestEnergy := math.Inf(1)
	for _, d := range candidateDevices() {
		if !d.Supports(req.Precision) || d.MaxW > req.PowerW {
			continue
		}
		m, err := d.Evaluate(w, req.Precision, 1)
		if err != nil {
			continue
		}
		if m.LatencyMS > req.LatencyMS {
			continue
		}
		if e := m.EnergyPerInferenceMJ(); e < bestEnergy {
			best, bestM, bestEnergy = d, m, e
		}
	}

	if best == nil {
		// No off-the-shelf part fits: fall back to the class-4
		// co-design search (§II-B).
		res, err := accel.CoDesign(w, accel.CoDesignConstraints{
			LatencyMS: req.LatencyMS,
			PowerW:    req.PowerW,
			Precision: req.Precision,
		})
		if err != nil {
			return dep, err
		}
		if !res.Feasible {
			return dep, fmt.Errorf("core: use case %q infeasible: no device or co-design meets %.1f ms / %.1f W",
				uc.Name, req.LatencyMS, req.PowerW)
		}
		dep.Device = res.Dev
		dep.M = res.M
		dep.CoDesigned = true
		return dep, nil
	}
	dep.Device = best
	dep.M = bestM

	// Platform mapping (§II-A): find a module carrying the device and
	// a chassis accepting the module in the requested tier.
	if mod := moduleFor(best.Name); mod != nil {
		dep.Module = mod.Name
		if ch := chassisFor(mod, req.Tier); ch != nil {
			dep.Chassis = ch.Name
		}
	}
	return dep, nil
}

func candidateDevices() []*accel.Device {
	devs := accel.EvaluationPlatforms()
	seen := make(map[string]bool, len(devs))
	for _, d := range devs {
		seen[d.Name] = true
	}
	for _, d := range accel.EmbeddedTargets() {
		if !seen[d.Name] {
			devs = append(devs, d)
			seen[d.Name] = true
		}
	}
	return devs
}

func moduleFor(deviceName string) *microserver.Module {
	for _, m := range microserver.StandardModules() {
		if m.Accelerator == deviceName {
			return m
		}
	}
	return nil
}

func chassisFor(m *microserver.Module, tier string) *microserver.Chassis {
	candidates := []*microserver.Chassis{
		microserver.NewURECS(),
		microserver.NewTRECS(3),
		microserver.NewRECSBox(4),
	}
	for _, c := range candidates {
		if tier != "" && c.Tier != tier {
			continue
		}
		for slot := range c.Slots {
			if err := c.Insert(slot, m); err == nil {
				return c
			}
		}
	}
	return nil
}

// OffloadPlan is the PAEB distribution decision (§V-A): run the
// detector on-car or ship the frame to an edge station, trading network
// transfer against compute speed and on-car energy.
type OffloadPlan struct {
	// Offload reports whether the edge path wins.
	Offload bool
	// LocalMS and EdgeMS are the end-to-end latencies of both options.
	LocalMS, EdgeMS float64
	// EdgeBreakdown separates the offload latency.
	UplinkMS, EdgeComputeMS, DownlinkMS float64
	// CarEnergyLocalMJ and CarEnergyOffloadMJ compare on-car energy.
	CarEnergyLocalMJ, CarEnergyOffloadMJ float64
	// MeetsDeadline reports whether the chosen option meets it.
	MeetsDeadline bool
}

// PlanOffload evaluates both execution paths for one camera frame.
// radioTxW is the car radio's transmit power; resultBytes the detection
// payload returned by the edge.
func PlanOffload(w accel.Workload, onCar, edge *accel.Device, precision tensor.DType,
	link fabric.LinkProfile, frameBytes, resultBytes int64, deadlineMS, radioTxW float64) (OffloadPlan, error) {

	var plan OffloadPlan
	local, err := onCar.Evaluate(w, precision, 1)
	if err != nil {
		return plan, err
	}
	edgeM, err := edge.Evaluate(w, precision, 1)
	if err != nil {
		return plan, err
	}
	plan.LocalMS = local.LatencyMS
	plan.UplinkMS = link.TransferMS(frameBytes)
	plan.EdgeComputeMS = edgeM.LatencyMS
	plan.DownlinkMS = link.TransferMS(resultBytes)
	plan.EdgeMS = plan.UplinkMS + plan.EdgeComputeMS + plan.DownlinkMS

	plan.CarEnergyLocalMJ = local.EnergyPerInferenceMJ()
	// Offload energy on the car: radio transmit during uplink plus idle
	// accelerator during the wait.
	plan.CarEnergyOffloadMJ = radioTxW*plan.UplinkMS + onCar.IdleW*plan.EdgeMS

	// Decide: prefer the option that meets the deadline; among options
	// meeting it, minimize on-car energy (the paper's stated goal is
	// minimizing on-car energy consumption).
	localOK := plan.LocalMS <= deadlineMS
	edgeOK := plan.EdgeMS <= deadlineMS
	switch {
	case localOK && edgeOK:
		plan.Offload = plan.CarEnergyOffloadMJ < plan.CarEnergyLocalMJ
	case edgeOK:
		plan.Offload = true
	case localOK:
		plan.Offload = false
	default:
		// Neither meets the deadline: pick the faster one.
		plan.Offload = plan.EdgeMS < plan.LocalMS
	}
	if plan.Offload {
		plan.MeetsDeadline = edgeOK
	} else {
		plan.MeetsDeadline = localOK
	}
	return plan, nil
}

// RankDevices orders all candidate devices for a workload by energy per
// inference at the given precision, reporting only feasible ones.
func RankDevices(w accel.Workload, precision tensor.DType, deadlineMS, powerW float64) []accel.Measurement {
	var out []accel.Measurement
	for _, d := range candidateDevices() {
		if !d.Supports(precision) || (powerW > 0 && d.MaxW > powerW) {
			continue
		}
		m, err := d.Evaluate(w, precision, 1)
		if err != nil || (deadlineMS > 0 && m.LatencyMS > deadlineMS) {
			continue
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].EnergyPerInferenceMJ() < out[j].EnergyPerInferenceMJ()
	})
	return out
}
