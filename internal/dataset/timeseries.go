package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// ErrorKind enumerates the input-data error classes the safety monitors
// (§IV-B) must detect: outliers, stuck-at sensors, drift and noise
// bursts.
type ErrorKind int

// Injected error kinds, in severity order used by the reports.
const (
	ErrNone ErrorKind = iota
	ErrOutlier
	ErrStuckAt
	ErrDrift
	ErrNoiseBurst
	NumErrorKinds
)

// String names the error kind.
func (e ErrorKind) String() string {
	switch e {
	case ErrNone:
		return "none"
	case ErrOutlier:
		return "outlier"
	case ErrStuckAt:
		return "stuck-at"
	case ErrDrift:
		return "drift"
	case ErrNoiseBurst:
		return "noise-burst"
	}
	return fmt.Sprintf("ErrorKind(%d)", int(e))
}

// TimeSeries is a sensor stream with per-sample error ground truth.
type TimeSeries struct {
	Values []float32
	// Faulty[i] is the error kind injected at sample i (ErrNone = clean).
	Faulty []ErrorKind
}

// SeriesConfig parameterizes clean-signal generation.
type SeriesConfig struct {
	N      int
	Period int     // samples per seasonal cycle
	Noise  float64 // baseline sensor noise sigma
	Seed   int64
}

// CleanSeries generates a well-behaved periodic sensor signal.
func CleanSeries(cfg SeriesConfig) TimeSeries {
	rng := rand.New(rand.NewSource(cfg.Seed))
	vals := make([]float32, cfg.N)
	for i := range vals {
		v := math.Sin(2*math.Pi*float64(i)/float64(cfg.Period)) +
			0.3*math.Sin(4*math.Pi*float64(i)/float64(cfg.Period))
		vals[i] = float32(v + rng.NormFloat64()*cfg.Noise)
	}
	return TimeSeries{Values: vals, Faulty: make([]ErrorKind, cfg.N)}
}

// InjectConfig controls error injection.
type InjectConfig struct {
	// Rate is the approximate fraction of samples affected per kind.
	Rate float64
	Seed int64
}

// InjectErrors corrupts a copy of ts with all error kinds and returns
// it. Outliers are isolated spikes, stuck-at freezes the signal for a
// stretch, drift adds a growing offset, and noise bursts multiply the
// local noise floor.
func InjectErrors(ts TimeSeries, cfg InjectConfig) TimeSeries {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := TimeSeries{
		Values: append([]float32(nil), ts.Values...),
		Faulty: append([]ErrorKind(nil), ts.Faulty...),
	}
	n := len(out.Values)
	if n == 0 {
		return out
	}
	affected := int(cfg.Rate * float64(n))
	if affected < 1 {
		affected = 1
	}

	// Outliers: isolated spikes of 6-12 sigma.
	for k := 0; k < affected; k++ {
		i := rng.Intn(n)
		mag := 6 + 6*rng.Float64()
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		out.Values[i] += float32(mag)
		out.Faulty[i] = ErrOutlier
	}

	// Stuck-at: one frozen stretch.
	if stretch := affected; stretch > 1 && n > stretch*2 {
		start := rng.Intn(n - stretch)
		frozen := out.Values[start]
		for i := start; i < start+stretch; i++ {
			out.Values[i] = frozen
			out.Faulty[i] = ErrStuckAt
		}
	}

	// Drift: linearly growing offset over a stretch.
	if stretch := affected * 2; n > stretch*2 {
		start := rng.Intn(n - stretch)
		for i := start; i < start+stretch; i++ {
			out.Values[i] += float32(2.5 * float64(i-start) / float64(stretch))
			out.Faulty[i] = ErrDrift
		}
	}

	// Noise burst: 8x noise floor over a stretch.
	if stretch := affected; n > stretch*2 {
		start := rng.Intn(n - stretch)
		for i := start; i < start+stretch; i++ {
			out.Values[i] += float32(rng.NormFloat64() * 0.8)
			out.Faulty[i] = ErrNoiseBurst
		}
	}
	return out
}

// Image is a tiny grayscale frame with ground-truth noise level, standing
// in for the camera streams of the smart-mirror use case.
type Image struct {
	W, H   int
	Pix    []float32 // row-major, [0,1]
	Sigma  float64   // injected noise sigma
	Smooth bool      // true if generated without noise injection
}

// SceneImage renders a deterministic synthetic scene (gradient background
// plus rectangles) with the given additive Gaussian noise sigma.
func SceneImage(w, h int, sigma float64, seed int64) Image {
	rng := rand.New(rand.NewSource(seed))
	img := Image{W: w, H: h, Pix: make([]float32, w*h), Sigma: sigma, Smooth: sigma == 0}
	// Background gradient.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Pix[y*w+x] = float32(x+y) / float32(w+h)
		}
	}
	// A few bright rectangles ("objects").
	for k := 0; k < 3; k++ {
		rx, ry := rng.Intn(w*3/4), rng.Intn(h*3/4)
		rw, rh := w/8+rng.Intn(w/8), h/8+rng.Intn(h/8)
		val := 0.5 + 0.5*rng.Float64()
		for y := ry; y < ry+rh && y < h; y++ {
			for x := rx; x < rx+rw && x < w; x++ {
				img.Pix[y*w+x] = float32(val)
			}
		}
	}
	if sigma > 0 {
		for i := range img.Pix {
			img.Pix[i] += float32(rng.NormFloat64() * sigma)
		}
	}
	return img
}
