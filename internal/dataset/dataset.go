// Package dataset generates the synthetic datasets that stand in for the
// paper's proprietary sensor data (motor vibration, DC-arc current,
// camera streams). Every generator is seeded and deterministic, and every
// sample carries ground truth, so classifier accuracy, monitor detection
// rates and false-negative rates are all measurable.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Sample is one labelled feature vector.
type Sample struct {
	X     []float32
	Label int
}

// Split divides samples into train and test partitions (testFrac of the
// data, at least one sample, goes to test).
func Split(samples []Sample, testFrac float64) (train, test []Sample) {
	n := int(float64(len(samples)) * testFrac)
	if n < 1 {
		n = 1
	}
	if n >= len(samples) {
		n = len(samples) - 1
	}
	return samples[:len(samples)-n], samples[len(samples)-n:]
}

// Blobs generates an n-sample, dim-dimensional Gaussian-blob
// classification problem with the given number of classes. Class
// centroids are placed on a deterministic random sphere; spread controls
// intra-class noise (larger = harder).
func Blobs(n, dim, classes int, spread float64, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	centroids := make([][]float64, classes)
	for c := range centroids {
		centroids[c] = make([]float64, dim)
		var norm float64
		for d := range centroids[c] {
			centroids[c][d] = rng.NormFloat64()
			norm += centroids[c][d] * centroids[c][d]
		}
		norm = math.Sqrt(norm)
		for d := range centroids[c] {
			centroids[c][d] /= norm
		}
	}
	samples := make([]Sample, n)
	for i := range samples {
		c := rng.Intn(classes)
		x := make([]float32, dim)
		for d := 0; d < dim; d++ {
			x[d] = float32(centroids[c][d] + rng.NormFloat64()*spread)
		}
		samples[i] = Sample{X: x, Label: c}
	}
	return samples
}

// MotorState enumerates the motor conditions monitored in the Industrial
// IoT use case (§V-B): operational, thermal and mechanical conditions.
type MotorState int

// Motor conditions, in label order.
const (
	MotorNormal MotorState = iota
	MotorBearingFault
	MotorImbalance
	MotorOverheat
	MotorStatorFault
	NumMotorStates
)

// String names the state.
func (s MotorState) String() string {
	switch s {
	case MotorNormal:
		return "normal"
	case MotorBearingFault:
		return "bearing-fault"
	case MotorImbalance:
		return "imbalance"
	case MotorOverheat:
		return "overheat"
	case MotorStatorFault:
		return "stator-fault"
	}
	return fmt.Sprintf("MotorState(%d)", int(s))
}

// MotorConfig parameterizes vibration-signature generation.
type MotorConfig struct {
	Window     int     // samples per window
	SampleRate float64 // Hz
	RotationHz float64 // shaft speed
	Noise      float64 // sensor noise sigma
	Seed       int64
}

// DefaultMotorConfig matches a 3 kHz accelerometer on a 25 Hz (1500 rpm)
// asynchronous motor.
func DefaultMotorConfig() MotorConfig {
	return MotorConfig{Window: 256, SampleRate: 3000, RotationHz: 25, Noise: 0.1, Seed: 1}
}

// MotorVibration generates n labelled vibration windows covering all
// motor states. The signatures follow standard condition-monitoring
// folklore: bearing faults add periodic high-frequency impulse bursts at
// the fault characteristic frequency, imbalance amplifies the 1x shaft
// harmonic, overheating shows as a low-frequency thermal drift with
// reduced harmonic content, and stator faults add a strong component at
// twice the line frequency.
func MotorVibration(n int, cfg MotorConfig) []Sample {
	rng := rand.New(rand.NewSource(cfg.Seed))
	samples := make([]Sample, n)
	dt := 1 / cfg.SampleRate
	for i := range samples {
		state := MotorState(rng.Intn(int(NumMotorStates)))
		x := make([]float32, cfg.Window)
		phase := rng.Float64() * 2 * math.Pi
		for t := 0; t < cfg.Window; t++ {
			ts := float64(t) * dt
			// Base rotation harmonic plus second harmonic.
			v := 0.5*math.Sin(2*math.Pi*cfg.RotationHz*ts+phase) +
				0.1*math.Sin(4*math.Pi*cfg.RotationHz*ts+phase)
			switch state {
			case MotorBearingFault:
				// BPFO-style impulses at ~3.6x shaft speed with ringing.
				faultHz := 3.6 * cfg.RotationHz
				tf := math.Mod(ts*faultHz, 1)
				if tf < 0.08 {
					v += 1.5 * math.Exp(-tf*40) * math.Sin(2*math.Pi*800*ts)
				}
			case MotorImbalance:
				v += 0.9 * math.Sin(2*math.Pi*cfg.RotationHz*ts+phase)
			case MotorOverheat:
				v = 0.6*v + 0.4*math.Sin(2*math.Pi*0.5*ts+phase) + 0.15*ts
			case MotorStatorFault:
				v += 0.7 * math.Sin(2*math.Pi*100*ts+phase) // 2x line freq
			}
			v += rng.NormFloat64() * cfg.Noise
			x[t] = float32(v)
		}
		samples[i] = Sample{X: x, Label: int(state)}
	}
	return samples
}

// ArcConfig parameterizes DC-arc waveform generation.
type ArcConfig struct {
	Window     int     // samples per window
	SampleRate float64 // Hz
	LoadAmps   float64 // nominal DC current
	Noise      float64
	Seed       int64
}

// DefaultArcConfig models a 100 kHz current sensor on a 20 A DC bus.
func DefaultArcConfig() ArcConfig {
	return ArcConfig{Window: 512, SampleRate: 100e3, LoadAmps: 20, Noise: 0.05, Seed: 1}
}

// ArcSample is one current window with arc ground truth.
type ArcSample struct {
	X []float32
	// Arc reports whether an arc ignites inside the window.
	Arc bool
	// Onset is the sample index of ignition (-1 when Arc is false).
	Onset int
}

// ArcCurrent generates n current windows, around half containing a
// series-arc ignition. Arc signatures follow the DC-arc literature: a
// step drop in mean current, broadband noise, and chaotic low-frequency
// flutter after ignition.
func ArcCurrent(n int, cfg ArcConfig) []ArcSample {
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]ArcSample, n)
	for i := range out {
		arc := rng.Intn(2) == 1
		onset := -1
		if arc {
			onset = cfg.Window/8 + rng.Intn(cfg.Window/2)
		}
		x := make([]float32, cfg.Window)
		flutter := 0.0
		for t := 0; t < cfg.Window; t++ {
			v := cfg.LoadAmps + rng.NormFloat64()*cfg.Noise*cfg.LoadAmps/10
			// Switching ripple.
			v += 0.05 * cfg.LoadAmps * math.Sin(2*math.Pi*20e3*float64(t)/cfg.SampleRate)
			if arc && t >= onset {
				// Arc voltage drop reduces current; broadband noise and
				// 1/f flutter appear.
				flutter = 0.95*flutter + rng.NormFloat64()*0.05
				v -= 0.12 * cfg.LoadAmps
				v += cfg.LoadAmps * (0.08*rng.NormFloat64() + 0.1*flutter)
			}
			x[t] = float32(v)
		}
		out[i] = ArcSample{X: x, Arc: arc, Onset: onset}
	}
	return out
}

// ToSamples converts arc windows to classifier samples (label 1 = arc).
func ToSamples(arcs []ArcSample) []Sample {
	out := make([]Sample, len(arcs))
	for i, a := range arcs {
		label := 0
		if a.Arc {
			label = 1
		}
		out[i] = Sample{X: a.X, Label: label}
	}
	return out
}

// Normalize scales each feature vector in place to zero mean and unit
// variance (per sample), the pre-processing step of the deployment
// pipeline.
func Normalize(samples []Sample) {
	for _, s := range samples {
		var mean float64
		for _, v := range s.X {
			mean += float64(v)
		}
		mean /= float64(len(s.X))
		var variance float64
		for _, v := range s.X {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(len(s.X))
		std := math.Sqrt(variance)
		if std == 0 {
			std = 1
		}
		for i, v := range s.X {
			s.X[i] = float32((float64(v) - mean) / std)
		}
	}
}
