package dataset

import (
	"math"
	"testing"
)

func TestBlobsDeterministicAndLabeled(t *testing.T) {
	a := Blobs(100, 8, 3, 0.2, 42)
	b := Blobs(100, 8, 3, 0.2, 42)
	if len(a) != 100 {
		t.Fatalf("got %d samples", len(a))
	}
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ across same-seed runs")
		}
		for d := range a[i].X {
			if a[i].X[d] != b[i].X[d] {
				t.Fatal("features differ across same-seed runs")
			}
		}
		if a[i].Label < 0 || a[i].Label >= 3 {
			t.Fatalf("label %d out of range", a[i].Label)
		}
		if len(a[i].X) != 8 {
			t.Fatalf("dim %d", len(a[i].X))
		}
	}
}

func TestBlobsSeparable(t *testing.T) {
	// With tiny spread, nearest-centroid classification must be nearly
	// perfect — verifies the blobs actually cluster by label.
	samples := Blobs(300, 16, 4, 0.05, 7)
	centroids := make([][]float64, 4)
	counts := make([]int, 4)
	for i := range centroids {
		centroids[i] = make([]float64, 16)
	}
	for _, s := range samples {
		for d, v := range s.X {
			centroids[s.Label][d] += float64(v)
		}
		counts[s.Label]++
	}
	for c := range centroids {
		for d := range centroids[c] {
			centroids[c][d] /= float64(counts[c])
		}
	}
	correct := 0
	for _, s := range samples {
		best, bestD := -1, math.Inf(1)
		for c := range centroids {
			var dist float64
			for d, v := range s.X {
				diff := float64(v) - centroids[c][d]
				dist += diff * diff
			}
			if dist < bestD {
				best, bestD = c, dist
			}
		}
		if best == s.Label {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(samples)); acc < 0.95 {
		t.Errorf("nearest-centroid accuracy %.2f < 0.95: blobs not separable", acc)
	}
}

func TestSplit(t *testing.T) {
	s := Blobs(100, 2, 2, 0.1, 1)
	train, test := Split(s, 0.2)
	if len(train) != 80 || len(test) != 20 {
		t.Errorf("split = %d/%d", len(train), len(test))
	}
	// Degenerate fractions stay sane.
	tr, te := Split(s, 0)
	if len(te) < 1 || len(tr)+len(te) != 100 {
		t.Errorf("zero-frac split = %d/%d", len(tr), len(te))
	}
	tr2, te2 := Split(s, 1)
	if len(tr2) < 1 || len(te2) != 99 {
		t.Errorf("full-frac split = %d/%d", len(tr2), len(te2))
	}
}

func TestMotorVibrationStates(t *testing.T) {
	cfg := DefaultMotorConfig()
	samples := MotorVibration(200, cfg)
	seen := make(map[int]int)
	for _, s := range samples {
		if len(s.X) != cfg.Window {
			t.Fatalf("window %d", len(s.X))
		}
		seen[s.Label]++
	}
	for st := 0; st < int(NumMotorStates); st++ {
		if seen[st] == 0 {
			t.Errorf("state %s never generated", MotorState(st))
		}
	}
}

func TestMotorSignaturesDiffer(t *testing.T) {
	// Bearing-fault windows must carry more high-frequency energy than
	// normal windows; imbalance more total energy.
	cfg := DefaultMotorConfig()
	cfg.Noise = 0.01
	samples := MotorVibration(400, cfg)
	var hfNormal, hfFault, nNormal, nFault float64
	for _, s := range samples {
		var hf float64
		for i := 1; i < len(s.X); i++ {
			d := float64(s.X[i] - s.X[i-1])
			hf += d * d
		}
		switch MotorState(s.Label) {
		case MotorNormal:
			hfNormal += hf
			nNormal++
		case MotorBearingFault:
			hfFault += hf
			nFault++
		}
	}
	if nNormal == 0 || nFault == 0 {
		t.Skip("insufficient class coverage")
	}
	if hfFault/nFault <= hfNormal/nNormal {
		t.Error("bearing-fault windows lack high-frequency signature")
	}
}

func TestMotorStateString(t *testing.T) {
	for st := MotorState(0); st < NumMotorStates; st++ {
		if st.String() == "" || st.String()[0] == 'M' {
			t.Errorf("state %d has bad name %q", int(st), st.String())
		}
	}
}

func TestArcCurrent(t *testing.T) {
	cfg := DefaultArcConfig()
	arcs := ArcCurrent(100, cfg)
	nArc := 0
	for _, a := range arcs {
		if len(a.X) != cfg.Window {
			t.Fatalf("window %d", len(a.X))
		}
		if a.Arc {
			nArc++
			if a.Onset < 0 || a.Onset >= cfg.Window {
				t.Errorf("bad onset %d", a.Onset)
			}
		} else if a.Onset != -1 {
			t.Errorf("non-arc sample has onset %d", a.Onset)
		}
	}
	if nArc < 20 || nArc > 80 {
		t.Errorf("arc fraction %d/100 implausible", nArc)
	}
}

func TestArcSignatureVisible(t *testing.T) {
	// Post-onset variance must exceed pre-onset variance.
	cfg := DefaultArcConfig()
	arcs := ArcCurrent(50, cfg)
	for _, a := range arcs {
		if !a.Arc || a.Onset < 64 || a.Onset > cfg.Window-64 {
			continue
		}
		pre := variance(a.X[:a.Onset])
		post := variance(a.X[a.Onset:])
		if post <= pre {
			t.Errorf("arc window: post-onset variance %.3f <= pre %.3f", post, pre)
		}
	}
}

func variance(xs []float32) float64 {
	var mean float64
	for _, v := range xs {
		mean += float64(v)
	}
	mean /= float64(len(xs))
	var s float64
	for _, v := range xs {
		d := float64(v) - mean
		s += d * d
	}
	return s / float64(len(xs))
}

func TestToSamples(t *testing.T) {
	arcs := ArcCurrent(20, DefaultArcConfig())
	samples := ToSamples(arcs)
	for i := range arcs {
		want := 0
		if arcs[i].Arc {
			want = 1
		}
		if samples[i].Label != want {
			t.Errorf("sample %d label %d, want %d", i, samples[i].Label, want)
		}
	}
}

func TestNormalize(t *testing.T) {
	s := []Sample{{X: []float32{1, 2, 3, 4}}}
	Normalize(s)
	var mean, variance float64
	for _, v := range s[0].X {
		mean += float64(v)
	}
	mean /= 4
	for _, v := range s[0].X {
		variance += (float64(v) - mean) * (float64(v) - mean)
	}
	variance /= 4
	if math.Abs(mean) > 1e-6 || math.Abs(variance-1) > 1e-5 {
		t.Errorf("mean %v variance %v after normalize", mean, variance)
	}
	// Constant vector must not produce NaN.
	c := []Sample{{X: []float32{5, 5}}}
	Normalize(c)
	if math.IsNaN(float64(c[0].X[0])) {
		t.Error("NaN on constant input")
	}
}

func TestCleanSeriesAndInjectErrors(t *testing.T) {
	ts := CleanSeries(SeriesConfig{N: 2000, Period: 50, Noise: 0.05, Seed: 3})
	if len(ts.Values) != 2000 {
		t.Fatalf("n = %d", len(ts.Values))
	}
	for _, f := range ts.Faulty {
		if f != ErrNone {
			t.Fatal("clean series has faults")
		}
	}
	bad := InjectErrors(ts, InjectConfig{Rate: 0.01, Seed: 4})
	kinds := map[ErrorKind]int{}
	for _, f := range bad.Faulty {
		kinds[f]++
	}
	for k := ErrOutlier; k < NumErrorKinds; k++ {
		if kinds[k] == 0 {
			t.Errorf("error kind %s never injected", k)
		}
	}
	// The original must be untouched.
	for _, f := range ts.Faulty {
		if f != ErrNone {
			t.Fatal("InjectErrors mutated input")
		}
	}
}

func TestErrorKindString(t *testing.T) {
	for k := ErrorKind(0); k < NumErrorKinds; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
}

func TestSceneImage(t *testing.T) {
	clean := SceneImage(32, 32, 0, 1)
	noisy := SceneImage(32, 32, 0.2, 1)
	if len(clean.Pix) != 32*32 || !clean.Smooth || noisy.Smooth {
		t.Fatal("bad image metadata")
	}
	// Noisy image must have higher local variation.
	tv := func(img Image) float64 {
		var s float64
		for y := 0; y < img.H; y++ {
			for x := 1; x < img.W; x++ {
				d := float64(img.Pix[y*img.W+x] - img.Pix[y*img.W+x-1])
				s += d * d
			}
		}
		return s
	}
	if tv(noisy) <= tv(clean) {
		t.Error("noise injection did not raise total variation")
	}
}
