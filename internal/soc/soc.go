// Package soc is a functional system-on-chip simulation framework — the
// reproduction's stand-in for Renode (§II-B): it assembles machines
// from a bus, memories and peripherals, runs the same firmware a real
// SoC would, and exposes introspection hooks for interactive
// development and CI. The paper's Renode enhancement — simulating
// Custom Function Units next to the CPU — is reproduced through the
// riscv.CFU port.
package soc

import (
	"fmt"
	"sort"

	"vedliot/internal/riscv"
)

// Device is a bus-mapped peripheral handling word-aligned access at
// region-relative offsets.
type Device interface {
	Name() string
	Size() uint32
	Read32(off uint32) (uint32, error)
	Write32(off uint32, v uint32) error
}

// region is one address-space mapping.
type region struct {
	base uint32
	dev  Device
}

// Bus routes core accesses to mapped devices. It implements riscv.Bus.
type Bus struct {
	regions []region
}

// Map attaches a device at base. Regions must not overlap.
func (b *Bus) Map(base uint32, dev Device) error {
	end := uint64(base) + uint64(dev.Size())
	if end > 1<<32 {
		return fmt.Errorf("soc: %s at %#x overflows address space", dev.Name(), base)
	}
	for _, r := range b.regions {
		rEnd := uint64(r.base) + uint64(r.dev.Size())
		if uint64(base) < rEnd && end > uint64(r.base) {
			return fmt.Errorf("soc: %s at %#x overlaps %s at %#x", dev.Name(), base, r.dev.Name(), r.base)
		}
	}
	b.regions = append(b.regions, region{base, dev})
	sort.Slice(b.regions, func(i, j int) bool { return b.regions[i].base < b.regions[j].base })
	return nil
}

func (b *Bus) find(addr uint32) (*region, error) {
	for i := range b.regions {
		r := &b.regions[i]
		if addr >= r.base && addr-r.base < r.dev.Size() {
			return r, nil
		}
	}
	return nil, fmt.Errorf("soc: bus fault at %#x", addr)
}

// Read32 implements riscv.Bus. Unaligned word reads are assembled from
// byte accesses within one device.
func (b *Bus) Read32(addr uint32) (uint32, error) {
	r, err := b.find(addr)
	if err != nil {
		return 0, err
	}
	off := addr - r.base
	if off%4 == 0 {
		return r.dev.Read32(off)
	}
	var v uint32
	for i := uint32(0); i < 4; i++ {
		bv, err := b.Read8(addr + i)
		if err != nil {
			return 0, err
		}
		v |= uint32(bv) << (8 * i)
	}
	return v, nil
}

// Read16 implements riscv.Bus.
func (b *Bus) Read16(addr uint32) (uint16, error) {
	lo, err := b.Read8(addr)
	if err != nil {
		return 0, err
	}
	hi, err := b.Read8(addr + 1)
	if err != nil {
		return 0, err
	}
	return uint16(lo) | uint16(hi)<<8, nil
}

// Read8 implements riscv.Bus.
func (b *Bus) Read8(addr uint32) (uint8, error) {
	r, err := b.find(addr)
	if err != nil {
		return 0, err
	}
	off := addr - r.base
	w, err := r.dev.Read32(off &^ 3)
	if err != nil {
		return 0, err
	}
	return uint8(w >> (8 * (off & 3))), nil
}

// Write32 implements riscv.Bus.
func (b *Bus) Write32(addr uint32, v uint32) error {
	r, err := b.find(addr)
	if err != nil {
		return err
	}
	off := addr - r.base
	if off%4 == 0 {
		return r.dev.Write32(off, v)
	}
	for i := uint32(0); i < 4; i++ {
		if err := b.Write8(addr+i, uint8(v>>(8*i))); err != nil {
			return err
		}
	}
	return nil
}

// Write16 implements riscv.Bus.
func (b *Bus) Write16(addr uint32, v uint16) error {
	if err := b.Write8(addr, uint8(v)); err != nil {
		return err
	}
	return b.Write8(addr+1, uint8(v>>8))
}

// Write8 implements riscv.Bus (read-modify-write on the device word).
func (b *Bus) Write8(addr uint32, v uint8) error {
	r, err := b.find(addr)
	if err != nil {
		return err
	}
	off := addr - r.base
	word := off &^ 3
	old, err := r.dev.Read32(word)
	if err != nil {
		return err
	}
	shift := 8 * (off & 3)
	nv := old&^(0xff<<shift) | uint32(v)<<shift
	return r.dev.Write32(word, nv)
}

var _ riscv.Bus = (*Bus)(nil)
