package soc

import (
	"fmt"

	"vedliot/internal/riscv"
)

// Standard address map (QEMU virt-like).
const (
	RAMBase      = 0x8000_0000
	UARTBase     = 0x1000_0000
	TimerBase    = 0x1010_0000
	FinisherBase = 0x0010_0000
)

// Config describes a machine to assemble.
type Config struct {
	Name    string
	RAMSize uint32
	// CFU optionally attaches a custom function unit to the core.
	CFU riscv.CFU
}

// Machine is one simulated SoC: core, bus, memory and peripherals.
type Machine struct {
	Name     string
	Core     *riscv.Core
	Bus      *Bus
	RAM      *RAM
	UART     *UART
	Timer    *Timer
	Finisher *Finisher
}

// NewMachine assembles a machine from the config.
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.RAMSize == 0 {
		cfg.RAMSize = 1 << 20
	}
	m := &Machine{
		Name:     cfg.Name,
		Bus:      &Bus{},
		RAM:      NewRAM("ram", cfg.RAMSize),
		UART:     &UART{},
		Timer:    &Timer{},
		Finisher: &Finisher{},
	}
	for _, mapping := range []struct {
		base uint32
		dev  Device
	}{
		{RAMBase, m.RAM},
		{UARTBase, m.UART},
		{TimerBase, m.Timer},
		{FinisherBase, m.Finisher},
	} {
		if err := m.Bus.Map(mapping.base, mapping.dev); err != nil {
			return nil, err
		}
	}
	m.Core = riscv.NewCore(m.Bus, RAMBase)
	m.Core.CFU = cfg.CFU
	m.Timer.Now = func() uint64 { return m.Core.Cycles }
	m.Finisher.OnDone = func() { m.Core.Halted = true }
	return m, nil
}

// LoadFirmware places a word image at the reset vector.
func (m *Machine) LoadFirmware(words []uint32) error {
	return m.RAM.LoadWords(0, words)
}

// Run executes up to maxInstr instructions, returning the retired count.
// The machine stops early when firmware writes the finisher or executes
// WFI.
func (m *Machine) Run(maxInstr uint64) (uint64, error) {
	before := m.Core.Instret
	if err := m.Core.Run(maxInstr); err != nil {
		return m.Core.Instret - before, err
	}
	return m.Core.Instret - before, nil
}

// RequireFinished returns an error unless firmware signalled a verdict.
func (m *Machine) RequireFinished() error {
	if !m.Finisher.Done {
		return fmt.Errorf("soc: %s firmware did not reach the finisher", m.Name)
	}
	if !m.Finisher.Pass {
		return fmt.Errorf("soc: %s firmware reported failure (code %#x)", m.Name, m.Finisher.Code)
	}
	return nil
}

// Program is a small firmware builder: it accumulates instructions and
// resolves absolute word addresses relative to RAMBase.
type Program struct {
	words []uint32
}

// Emit appends raw instructions.
func (p *Program) Emit(ws ...uint32) *Program {
	p.words = append(p.words, ws...)
	return p
}

// PC returns the address the next emitted instruction will occupy.
func (p *Program) PC() uint32 { return RAMBase + uint32(len(p.words))*4 }

// Words returns the image.
func (p *Program) Words() []uint32 { return p.words }

// EmitLI emits a 2-instruction load-immediate.
func (p *Program) EmitLI(rd int, v uint32) *Program {
	return p.Emit(riscv.LI(rd, v)...)
}

// EmitPutc emits code printing one character to the UART (clobbers T6).
func (p *Program) EmitPutc(ch byte) *Program {
	p.EmitLI(riscv.T6, UARTBase)
	p.EmitLI(riscv.T5, uint32(ch))
	return p.Emit(riscv.SW(riscv.T5, riscv.T6, UARTTx))
}

// EmitFinish emits code writing the pass/fail verdict (clobbers T6, T5).
func (p *Program) EmitFinish(pass bool) *Program {
	code := uint32(FinisherFail)
	if pass {
		code = FinisherPass
	}
	p.EmitLI(riscv.T6, FinisherBase)
	p.EmitLI(riscv.T5, code)
	return p.Emit(riscv.SW(riscv.T5, riscv.T6, 0))
}
