package soc

import (
	"strings"
	"testing"

	"vedliot/internal/cfu"
	"vedliot/internal/riscv"
)

func TestBusMappingAndOverlap(t *testing.T) {
	b := &Bus{}
	if err := b.Map(0x1000, NewRAM("a", 0x100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x1080, NewRAM("b", 0x100)); err == nil {
		t.Error("overlapping map accepted")
	}
	if err := b.Map(0x2000, NewRAM("c", 0x100)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read32(0x3000); err == nil {
		t.Error("unmapped read succeeded")
	}
	if err := b.Write32(0x3000, 1); err == nil {
		t.Error("unmapped write succeeded")
	}
}

func TestBusByteAndHalfAccess(t *testing.T) {
	b := &Bus{}
	if err := b.Map(0, NewRAM("ram", 64)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write32(0, 0x44332211); err != nil {
		t.Fatal(err)
	}
	v8, err := b.Read8(1)
	if err != nil || v8 != 0x22 {
		t.Errorf("Read8 = %#x, %v", v8, err)
	}
	v16, err := b.Read16(2)
	if err != nil || v16 != 0x4433 {
		t.Errorf("Read16 = %#x, %v", v16, err)
	}
	if err := b.Write8(3, 0xaa); err != nil {
		t.Fatal(err)
	}
	v32, _ := b.Read32(0)
	if v32 != 0xaa332211 {
		t.Errorf("after Write8: %#x", v32)
	}
	if err := b.Write16(0, 0xbeef); err != nil {
		t.Fatal(err)
	}
	v32, _ = b.Read32(0)
	if v32 != 0xaa33beef {
		t.Errorf("after Write16: %#x", v32)
	}
}

func TestRAMBounds(t *testing.T) {
	r := NewRAM("r", 8)
	if _, err := r.Read32(8); err == nil {
		t.Error("read past end succeeded")
	}
	if err := r.Write32(6, 1); err == nil {
		t.Error("unaligned-tail write past end succeeded")
	}
}

func TestUARTCapturesOutput(t *testing.T) {
	u := &UART{}
	for _, ch := range []byte("hi") {
		if err := u.Write32(UARTTx, uint32(ch)); err != nil {
			t.Fatal(err)
		}
	}
	if u.Output() != "hi" {
		t.Errorf("uart = %q", u.Output())
	}
	status, err := u.Read32(UARTStatus)
	if err != nil || status != 1 {
		t.Errorf("status = %d, %v", status, err)
	}
}

func TestMachineHelloWorld(t *testing.T) {
	m, err := NewMachine(Config{Name: "hello"})
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{}
	for _, ch := range []byte("OK\n") {
		p.EmitPutc(ch)
	}
	p.EmitFinish(true)
	p.Emit(riscv.WFI())
	if err := m.LoadFirmware(p.Words()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	if err := m.RequireFinished(); err != nil {
		t.Fatal(err)
	}
	if m.UART.Output() != "OK\n" {
		t.Errorf("uart = %q", m.UART.Output())
	}
}

func TestMachineFailVerdict(t *testing.T) {
	m, err := NewMachine(Config{Name: "fail"})
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{}
	p.EmitFinish(false)
	p.Emit(riscv.WFI())
	if err := m.LoadFirmware(p.Words()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	err = m.RequireFinished()
	if err == nil || !strings.Contains(err.Error(), "failure") {
		t.Errorf("RequireFinished = %v", err)
	}
}

func TestMachineNotFinished(t *testing.T) {
	m, err := NewMachine(Config{Name: "spin"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadFirmware([]uint32{riscv.JAL(0, 0)}); err != nil { // tight loop
		t.Fatal(err)
	}
	if _, err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if err := m.RequireFinished(); err == nil {
		t.Error("unfinished firmware passed RequireFinished")
	}
}

func TestTimerAdvances(t *testing.T) {
	m, err := NewMachine(Config{Name: "timer"})
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{}
	p.EmitLI(riscv.T0, TimerBase)
	p.Emit(riscv.LW(riscv.S0, riscv.T0, TimerMtimeLo)) // first reading
	for i := 0; i < 10; i++ {
		p.Emit(riscv.NOP())
	}
	p.Emit(riscv.LW(riscv.S1, riscv.T0, TimerMtimeLo)) // second reading
	p.Emit(riscv.WFI())
	if err := m.LoadFirmware(p.Words()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Core.X[riscv.S1] <= m.Core.X[riscv.S0] {
		t.Errorf("timer did not advance: %d -> %d", m.Core.X[riscv.S0], m.Core.X[riscv.S1])
	}
}

func TestMachineWithCFU(t *testing.T) {
	// Firmware computes a 4-element INT8 dot product through the
	// vector-MAC CFU, prints nothing, and reports pass/fail by
	// comparing with the expected value.
	mac := &cfu.VectorMAC{}
	m, err := NewMachine(Config{Name: "cfu", CFU: mac})
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{}
	// rs1 lanes: 1, 2, 3, 4 ; rs2 lanes: 5, 6, 7, 8 -> dot = 70.
	p.EmitLI(riscv.A0, 0x04030201)
	p.EmitLI(riscv.A1, 0x08070605)
	p.Emit(
		riscv.CUSTOM0(0, 0, 0, cfu.OpMacClear, 0),
		riscv.CUSTOM0(riscv.A2, riscv.A0, riscv.A1, cfu.OpMacStep, 0),
		riscv.WFI(),
	)
	if err := m.LoadFirmware(p.Words()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if mac.Acc() != 70 {
		t.Errorf("CFU acc = %d, want 70", mac.Acc())
	}
	if m.Core.X[riscv.A2] != 70 {
		t.Errorf("A2 = %d, want 70", m.Core.X[riscv.A2])
	}
}

func TestCFUAbsentTraps(t *testing.T) {
	m, err := NewMachine(Config{Name: "nocfu"})
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{}
	// Point mtvec at a handler that halts.
	handler := uint32(40)
	p.EmitLI(riscv.T0, RAMBase+handler)
	p.Emit(riscv.CSRRW(0, riscv.T0, riscv.CsrMtvec))
	p.Emit(riscv.CUSTOM0(1, 0, 0, 0, 0)) // no CFU attached -> illegal
	for p.PC() < RAMBase+handler {
		p.Emit(riscv.NOP())
	}
	p.Emit(riscv.CSRRS(riscv.S2, 0, riscv.CsrMcause))
	p.Emit(riscv.WFI())
	if err := m.LoadFirmware(p.Words()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err != nil {
		t.Fatal(err)
	}
	if m.Core.X[riscv.S2] != riscv.ExcIllegalInstr {
		t.Errorf("mcause = %d, want illegal instruction", m.Core.X[riscv.S2])
	}
}
