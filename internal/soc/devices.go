package soc

import (
	"fmt"
)

// RAM is a zero-initialized byte-addressable memory.
type RAM struct {
	name string
	data []byte
}

// NewRAM allocates size bytes (rounded up to a word).
func NewRAM(name string, size uint32) *RAM {
	size = (size + 3) &^ 3
	return &RAM{name: name, data: make([]byte, size)}
}

// Name implements Device.
func (r *RAM) Name() string { return r.name }

// Size implements Device.
func (r *RAM) Size() uint32 { return uint32(len(r.data)) }

// Read32 implements Device.
func (r *RAM) Read32(off uint32) (uint32, error) {
	if off+4 > uint32(len(r.data)) {
		return 0, fmt.Errorf("soc: %s read past end at %#x", r.name, off)
	}
	return uint32(r.data[off]) | uint32(r.data[off+1])<<8 |
		uint32(r.data[off+2])<<16 | uint32(r.data[off+3])<<24, nil
}

// Write32 implements Device.
func (r *RAM) Write32(off uint32, v uint32) error {
	if off+4 > uint32(len(r.data)) {
		return fmt.Errorf("soc: %s write past end at %#x", r.name, off)
	}
	r.data[off] = byte(v)
	r.data[off+1] = byte(v >> 8)
	r.data[off+2] = byte(v >> 16)
	r.data[off+3] = byte(v >> 24)
	return nil
}

// Bytes exposes the backing store directly. Host-side loaders (the
// RISC-V backend staging weights and activations) use it for bulk I/O
// instead of word-at-a-time bus writes.
func (r *RAM) Bytes() []byte { return r.data }

// LoadWords copies a firmware image (little-endian words) at offset.
func (r *RAM) LoadWords(off uint32, words []uint32) error {
	for i, w := range words {
		if err := r.Write32(off+uint32(i)*4, w); err != nil {
			return err
		}
	}
	return nil
}

// UART register offsets.
const (
	UARTTx     = 0x0 // write: transmit byte
	UARTStatus = 0x4 // read: bit0 = tx ready (always 1)
)

// UART is a transmit-only console capturing firmware output, the
// introspection hook CI assertions read.
type UART struct {
	out []byte
}

// Name implements Device.
func (u *UART) Name() string { return "uart" }

// Size implements Device.
func (u *UART) Size() uint32 { return 8 }

// Read32 implements Device.
func (u *UART) Read32(off uint32) (uint32, error) {
	switch off {
	case UARTTx:
		return 0, nil
	case UARTStatus:
		return 1, nil
	}
	return 0, fmt.Errorf("soc: uart read at %#x", off)
}

// Write32 implements Device.
func (u *UART) Write32(off uint32, v uint32) error {
	if off == UARTTx {
		u.out = append(u.out, byte(v))
		return nil
	}
	if off == UARTStatus {
		return nil
	}
	return fmt.Errorf("soc: uart write at %#x", off)
}

// Output returns everything transmitted so far.
func (u *UART) Output() string { return string(u.out) }

// Timer register offsets.
const (
	TimerMtimeLo = 0x0
	TimerMtimeHi = 0x4
)

// Timer exposes a free-running counter fed by the core's cycle counter.
type Timer struct {
	// Now is read on access; the machine wires it to the core cycles.
	Now func() uint64
}

// Name implements Device.
func (t *Timer) Name() string { return "timer" }

// Size implements Device.
func (t *Timer) Size() uint32 { return 8 }

// Read32 implements Device.
func (t *Timer) Read32(off uint32) (uint32, error) {
	now := uint64(0)
	if t.Now != nil {
		now = t.Now()
	}
	switch off {
	case TimerMtimeLo:
		return uint32(now), nil
	case TimerMtimeHi:
		return uint32(now >> 32), nil
	}
	return 0, fmt.Errorf("soc: timer read at %#x", off)
}

// Write32 implements Device.
func (t *Timer) Write32(off uint32, v uint32) error {
	return nil // counter is read-only
}

// Test-finisher codes (QEMU/Renode-style).
const (
	FinisherPass = 0x5555
	FinisherFail = 0x3333
)

// Finisher lets firmware end the simulation and report a verdict.
type Finisher struct {
	Done bool
	Pass bool
	Code uint32
	// OnDone is invoked when firmware writes the device.
	OnDone func()
}

// Name implements Device.
func (f *Finisher) Name() string { return "finisher" }

// Size implements Device.
func (f *Finisher) Size() uint32 { return 4 }

// Read32 implements Device.
func (f *Finisher) Read32(off uint32) (uint32, error) { return 0, nil }

// Write32 implements Device.
func (f *Finisher) Write32(off uint32, v uint32) error {
	f.Done = true
	f.Code = v
	f.Pass = v == FinisherPass
	if f.OnDone != nil {
		f.OnDone()
	}
	return nil
}
