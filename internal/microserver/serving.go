package microserver

import (
	"context"
	"fmt"
	"sync"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ServeConfig tunes a node's inference server.
type ServeConfig struct {
	// MaxBatch is the largest number of queued requests fused into one
	// engine dispatch (default 8).
	MaxBatch int
	// MaxWait bounds how long the dispatcher waits for the batch to
	// fill after the first request arrives (default 2ms). Zero keeps
	// the default; latency-critical nodes can set it to a nanosecond.
	MaxWait time.Duration
	// QueueDepth is the request channel capacity (default 4*MaxBatch).
	QueueDepth int
	// EngineOptions configure compilation on the serving backend (for
	// the CPU backend these are the host-engine options).
	EngineOptions []inference.Option
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// ServeStats is a server's cumulative telemetry, the serving-side
// counterpart of the chassis Monitoring snapshots.
type ServeStats struct {
	Requests int64
	Batches  int64
	// MaxBatch is the largest batch actually dispatched.
	MaxBatch int
	// Cancelled counts requests whose context was cancelled while they
	// were still queued: they are completed with the context error
	// without ever reaching the engine, so a disconnected client stops
	// consuming replica time. Cancelled requests are not counted in
	// Requests.
	Cancelled int64
}

// MeanBatch returns the average number of requests fused per dispatch.
func (s ServeStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// Server is one microserver node's inference service: a single compiled
// executable shared by all clients, fed through a batching queue.
// Concurrent Infer/InferMap calls are coalesced into RunBatch
// dispatches, which amortizes per-call overhead and hands the parallel
// kernels larger work items — the "serve as fast as the hardware
// allows" path for a module hosting a DL workload.
//
// The server is backend-generic: it fronts whatever
// inference.Backend compiled the model — the host CPU engine or any
// simulated accelerator (accel.Backend) mounted in a chassis slot. The
// fleet layer (internal/cluster) builds one Server per device and
// routes traffic across them.
type Server struct {
	exe         inference.Executable
	backendName string
	graphName   string
	inputNames  []string
	outputNames []string
	cfg         ServeConfig

	reqs chan *request
	quit chan struct{}
	wg   sync.WaitGroup

	// lifeMu serializes shutdown against in-flight submissions: InferMap
	// holds a read lock across its enqueue, so Close (write lock) cannot
	// mark the server closed while a request is between the closed-check
	// and the queue. Dispatcher goroutines never take lifeMu.
	lifeMu sync.RWMutex
	closed bool

	statsMu sync.Mutex
	stats   ServeStats
}

type request struct {
	ctx  context.Context
	ins  map[string]*tensor.Tensor
	outs map[string]*tensor.Tensor
	err  error
	done chan struct{}
}

// Serve compiles the graph on the host CPU backend and starts the
// dispatcher — the historical single-node entry point, now a thin
// wrapper over ServeBackend.
func Serve(g *nn.Graph, cfg ServeConfig) (*Server, error) {
	return ServeBackend(g, inference.CPUBackend{}, cfg)
}

// ServeBackend compiles the graph for the given backend and starts the
// dispatcher. Graphs with any number of inputs and outputs are served:
// full input/output maps flow through the batching queue (InferMap);
// the single-tensor Infer shortcut additionally requires the 1-in/1-out
// serving shape.
func ServeBackend(g *nn.Graph, b inference.Backend, cfg ServeConfig) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("microserver: nil backend")
	}
	if len(g.Inputs) == 0 || len(g.Outputs) == 0 {
		return nil, fmt.Errorf("microserver: graph %q has %d inputs/%d outputs, need at least 1/1",
			g.Name, len(g.Inputs), len(g.Outputs))
	}
	cfg = cfg.withDefaults()
	exe, err := b.Compile(g, cfg.EngineOptions...)
	if err != nil {
		return nil, fmt.Errorf("microserver: compile %q for %s: %w", g.Name, b.Name(), err)
	}
	return ServeCompiled(g, exe, b.Name(), cfg)
}

// ServeCompiled starts the dispatcher over an already-compiled
// executable — the plan-cache deployment path (inference.PlanCache):
// when several replicas of one artifact share a backend, the fleet
// layer compiles once and binds every server to the shared plan, so a
// replica cold-start skips lowering entirely. The executable must be
// safe for concurrent Run (both host engines and accel programs are);
// Close releases only the server, never the shared plan.
func ServeCompiled(g *nn.Graph, exe inference.Executable, backendName string, cfg ServeConfig) (*Server, error) {
	if exe == nil {
		return nil, fmt.Errorf("microserver: nil executable")
	}
	if len(g.Inputs) == 0 || len(g.Outputs) == 0 {
		return nil, fmt.Errorf("microserver: graph %q has %d inputs/%d outputs, need at least 1/1",
			g.Name, len(g.Inputs), len(g.Outputs))
	}
	cfg = cfg.withDefaults()
	s := &Server{
		exe:         exe,
		backendName: backendName,
		graphName:   g.Name,
		inputNames:  append([]string(nil), g.Inputs...),
		outputNames: append([]string(nil), g.Outputs...),
		cfg:         cfg,
		reqs:        make(chan *request, cfg.QueueDepth),
		quit:        make(chan struct{}),
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Executable exposes the shared compiled model (e.g. for direct batch
// submission, latency prediction or reporting).
func (s *Server) Executable() inference.Executable { return s.exe }

// Backend returns the name of the backend the model was compiled for.
func (s *Server) Backend() string { return s.backendName }

// Engine returns the host CPU engine backing this server, or nil when
// the server fronts a non-CPU executable that does not expose one.
func (s *Server) Engine() *inference.Engine {
	switch e := s.exe.(type) {
	case *inference.Engine:
		return e
	case interface{ HostEngine() *inference.Engine }:
		return e.HostEngine()
	}
	return nil
}

// Infer submits one input and blocks until its result is ready — the
// single-tensor shortcut for 1-input/1-output graphs. Safe for
// concurrent use; concurrent callers share dispatches. The input
// carries a leading batch dimension ([1, ...] for one sample; larger
// batches are allowed and fused with the queue like any other request).
func (s *Server) Infer(in *tensor.Tensor) (*tensor.Tensor, error) {
	if len(s.inputNames) != 1 || len(s.outputNames) != 1 {
		return nil, fmt.Errorf("microserver: Infer wants 1 input/1 output, graph %q has %d/%d (use InferMap)",
			s.graphName, len(s.inputNames), len(s.outputNames))
	}
	outs, err := s.InferMap(map[string]*tensor.Tensor{s.inputNames[0]: in})
	if err != nil {
		return nil, err
	}
	return outs[s.outputNames[0]], nil
}

// InferMap submits a full input map (keyed by input-node name) and
// blocks until the full output map is ready — the general serving path
// for multi-head graphs. Safe for concurrent use; concurrent callers
// share dispatches.
func (s *Server) InferMap(inputs map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	p, err := s.SubmitMap(inputs)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// SubmitMap hands a request to the batching queue without waiting for
// its result; the returned Pending resolves through Wait. The enqueue
// blocks while the queue is full, which is the node-level backpressure
// the fleet router leans on.
func (s *Server) SubmitMap(inputs map[string]*tensor.Tensor) (*Pending, error) {
	return s.SubmitMapCtx(context.Background(), inputs)
}

// SubmitMapCtx is SubmitMap bound to a caller context: the blocking
// enqueue aborts when the context ends, and a request whose context is
// cancelled while it is still queued is completed with the context
// error instead of being dispatched — a disconnected client stops
// consuming replica time. A request already handed to the engine runs
// to completion (engine dispatches are not preemptible).
func (s *Server) SubmitMapCtx(ctx context.Context, inputs map[string]*tensor.Tensor) (*Pending, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.lifeMu.RLock()
	if s.closed {
		s.lifeMu.RUnlock()
		return nil, fmt.Errorf("microserver: server closed")
	}
	r := &request{ctx: ctx, ins: inputs, done: make(chan struct{})}
	select {
	case s.reqs <- r:
		s.lifeMu.RUnlock()
		return &Pending{r: r}, nil
	case <-ctx.Done():
		s.lifeMu.RUnlock()
		return nil, ctx.Err()
	}
}

// Pending is a request accepted into the batching queue.
type Pending struct{ r *request }

// Wait blocks until the request's dispatch resolves.
func (p *Pending) Wait() (map[string]*tensor.Tensor, error) {
	<-p.r.done
	return p.r.outs, p.r.err
}

// Close drains the dispatcher and releases it. Requests already queued
// are completed or failed; later Infer calls fail immediately.
func (s *Server) Close() {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return
	}
	s.closed = true
	close(s.quit)
	s.lifeMu.Unlock()
	s.wg.Wait()
}

// Stats returns cumulative serving telemetry.
func (s *Server) Stats() ServeStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		// Once shutdown has begun, stop accepting new work even if the
		// queue is non-empty: queued requests are failed by drain, which
		// keeps Close prompt and deterministic.
		select {
		case <-s.quit:
			s.drain()
			return
		default:
		}
		var first *request
		select {
		case first = <-s.reqs:
		case <-s.quit:
			s.drain()
			return
		}
		pending := []*request{first}
		timer := time.NewTimer(s.cfg.MaxWait)
	collect:
		for len(pending) < s.cfg.MaxBatch {
			select {
			case r := <-s.reqs:
				pending = append(pending, r)
			case <-timer.C:
				break collect
			case <-s.quit:
				break collect
			}
		}
		timer.Stop()
		s.runBatch(pending)
	}
}

// drain fails any requests that were queued after shutdown began.
func (s *Server) drain() {
	for {
		select {
		case r := <-s.reqs:
			r.err = fmt.Errorf("microserver: server closed")
			close(r.done)
		default:
			return
		}
	}
}

func (s *Server) runBatch(pending []*request) {
	// Drop requests whose caller vanished while they were queued: they
	// complete with the context error and never reach the engine.
	live := pending[:0]
	cancelled := 0
	for _, r := range pending {
		if r.ctx != nil {
			if err := r.ctx.Err(); err != nil {
				r.err = err
				close(r.done)
				cancelled++
				continue
			}
		}
		live = append(live, r)
	}
	pending = live
	if cancelled > 0 {
		s.statsMu.Lock()
		s.stats.Cancelled += int64(cancelled)
		s.statsMu.Unlock()
	}
	if len(pending) == 0 {
		return
	}
	batches := make([]map[string]*tensor.Tensor, len(pending))
	for i, r := range pending {
		batches[i] = r.ins
	}
	outs, err := s.exe.RunBatch(batches)
	if err != nil {
		// One malformed input fails a fused dispatch; retry requests
		// individually so only the offender sees the error.
		for i, r := range pending {
			out, rerr := s.exe.Run(batches[i])
			if rerr != nil {
				r.err = rerr
			} else {
				r.outs = out
			}
			close(r.done)
		}
	} else {
		for i, r := range pending {
			r.outs = outs[i]
			close(r.done)
		}
	}
	s.statsMu.Lock()
	s.stats.Requests += int64(len(pending))
	s.stats.Batches++
	if len(pending) > s.stats.MaxBatch {
		s.stats.MaxBatch = len(pending)
	}
	s.statsMu.Unlock()
}
