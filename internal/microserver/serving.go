package microserver

import (
	"fmt"
	"sync"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

// ServeConfig tunes a node's inference server.
type ServeConfig struct {
	// MaxBatch is the largest number of queued requests fused into one
	// engine dispatch (default 8).
	MaxBatch int
	// MaxWait bounds how long the dispatcher waits for the batch to
	// fill after the first request arrives (default 2ms). Zero keeps
	// the default; latency-critical nodes can set it to a nanosecond.
	MaxWait time.Duration
	// QueueDepth is the request channel capacity (default 4*MaxBatch).
	QueueDepth int
	// EngineOptions configure compilation of the shared engine.
	EngineOptions []inference.Option
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// ServeStats is a server's cumulative telemetry, the serving-side
// counterpart of the chassis Monitoring snapshots.
type ServeStats struct {
	Requests int64
	Batches  int64
	// MaxBatch is the largest batch actually dispatched.
	MaxBatch int
}

// MeanBatch returns the average number of requests fused per dispatch.
func (s ServeStats) MeanBatch() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.Requests) / float64(s.Batches)
}

// Server is one microserver node's inference service: a single compiled
// engine shared by all clients, fed through a batching queue. Concurrent
// Infer calls are coalesced into Engine.RunBatch dispatches, which
// amortizes per-call overhead and hands the parallel kernels larger work
// items — the "serve as fast as the hardware allows" path for a module
// hosting a DL workload.
type Server struct {
	engine    *inference.Engine
	inputName string
	outName   string
	cfg       ServeConfig

	reqs chan *request
	quit chan struct{}
	wg   sync.WaitGroup

	// lifeMu serializes shutdown against in-flight submissions: Infer
	// holds a read lock across its enqueue, so Close (write lock) cannot
	// mark the server closed while a request is between the closed-check
	// and the queue. Dispatcher goroutines never take lifeMu.
	lifeMu sync.RWMutex
	closed bool

	statsMu sync.Mutex
	stats   ServeStats
}

type request struct {
	in   *tensor.Tensor
	out  *tensor.Tensor
	err  error
	done chan struct{}
}

// Serve compiles the graph once and starts the dispatcher. The graph
// must have exactly one input and one output (the serving shape of
// every use-case network).
func Serve(g *nn.Graph, cfg ServeConfig) (*Server, error) {
	if len(g.Inputs) != 1 || len(g.Outputs) != 1 {
		return nil, fmt.Errorf("microserver: serving wants 1 input/1 output, graph has %d/%d",
			len(g.Inputs), len(g.Outputs))
	}
	eng, err := inference.Compile(g, cfg.EngineOptions...)
	if err != nil {
		return nil, fmt.Errorf("microserver: compile %q: %w", g.Name, err)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		engine:    eng,
		inputName: g.Inputs[0],
		outName:   g.Outputs[0],
		cfg:       cfg,
		reqs:      make(chan *request, cfg.QueueDepth),
		quit:      make(chan struct{}),
	}
	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Engine exposes the shared compiled engine (e.g. for direct batch
// submission or reporting).
func (s *Server) Engine() *inference.Engine { return s.engine }

// Infer submits one input and blocks until its result is ready. Safe
// for concurrent use; concurrent callers share engine dispatches. The
// input carries a leading batch dimension ([1, ...] for one sample;
// larger batches are allowed and fused with the queue like any other
// request).
func (s *Server) Infer(in *tensor.Tensor) (*tensor.Tensor, error) {
	s.lifeMu.RLock()
	if s.closed {
		s.lifeMu.RUnlock()
		return nil, fmt.Errorf("microserver: server closed")
	}
	r := &request{in: in, done: make(chan struct{})}
	s.reqs <- r
	s.lifeMu.RUnlock()
	<-r.done
	return r.out, r.err
}

// Close drains the dispatcher and releases it. Requests already queued
// are completed or failed; later Infer calls fail immediately.
func (s *Server) Close() {
	s.lifeMu.Lock()
	if s.closed {
		s.lifeMu.Unlock()
		return
	}
	s.closed = true
	close(s.quit)
	s.lifeMu.Unlock()
	s.wg.Wait()
}

// Stats returns cumulative serving telemetry.
func (s *Server) Stats() ServeStats {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.stats
}

func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		var first *request
		select {
		case first = <-s.reqs:
		case <-s.quit:
			s.drain()
			return
		}
		pending := []*request{first}
		timer := time.NewTimer(s.cfg.MaxWait)
	collect:
		for len(pending) < s.cfg.MaxBatch {
			select {
			case r := <-s.reqs:
				pending = append(pending, r)
			case <-timer.C:
				break collect
			case <-s.quit:
				break collect
			}
		}
		timer.Stop()
		s.runBatch(pending)
	}
}

// drain fails any requests that were queued after shutdown began.
func (s *Server) drain() {
	for {
		select {
		case r := <-s.reqs:
			r.err = fmt.Errorf("microserver: server closed")
			close(r.done)
		default:
			return
		}
	}
}

func (s *Server) runBatch(pending []*request) {
	batches := make([]map[string]*tensor.Tensor, len(pending))
	for i, r := range pending {
		batches[i] = map[string]*tensor.Tensor{s.inputName: r.in}
	}
	outs, err := s.engine.RunBatch(batches)
	if err != nil {
		// One malformed input fails a fused dispatch; retry requests
		// individually so only the offender sees the error.
		for i, r := range pending {
			out, rerr := s.engine.Run(batches[i])
			if rerr != nil {
				r.err = rerr
			} else {
				r.out = out[s.outName]
			}
			close(r.done)
		}
	} else {
		for i, r := range pending {
			r.out = outs[i][s.outName]
			close(r.done)
		}
	}
	s.statsMu.Lock()
	s.stats.Requests += int64(len(pending))
	s.stats.Batches++
	if len(pending) > s.stats.MaxBatch {
		s.stats.MaxBatch = len(pending)
	}
	s.statsMu.Unlock()
}
