package microserver

import (
	"sync"
	"testing"
	"time"

	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func servedModel(t *testing.T, cfg ServeConfig) (*Server, *nn.Graph) {
	t.Helper()
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	s, err := Serve(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func gestureInput(seed int) *tensor.Tensor {
	in := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range in.F32 {
		in.F32[i] = float32((i*3+seed*7)%17)/17 - 0.5
	}
	return in
}

func TestServeMatchesDirectEngine(t *testing.T) {
	s, g := servedModel(t, ServeConfig{})
	defer s.Close()
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := gestureInput(1)
	want, err := eng.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Errorf("served result diverges by %g", d)
	}
}

func TestServeBatchesConcurrentClients(t *testing.T) {
	s, g := servedModel(t, ServeConfig{MaxBatch: 8, MaxWait: 20 * time.Millisecond})
	defer s.Close()
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			in := gestureInput(c)
			want, err := eng.RunSingle(in)
			if err != nil {
				errs <- err
				return
			}
			got, err := s.Infer(in)
			if err != nil {
				errs <- err
				return
			}
			if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
				errs <- &shapeErr{d}
				return
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Requests != clients {
		t.Errorf("stats recorded %d requests, want %d", st.Requests, clients)
	}
	if st.Batches >= clients {
		t.Errorf("no batching: %d dispatches for %d requests", st.Batches, clients)
	}
	if st.MeanBatch() <= 1 {
		t.Errorf("mean batch = %v, want > 1", st.MeanBatch())
	}
}

type shapeErr struct{ d float64 }

func (e *shapeErr) Error() string { return "served result diverges" }

func TestServeBadRequestFailsAlone(t *testing.T) {
	s, _ := servedModel(t, ServeConfig{MaxBatch: 4, MaxWait: 20 * time.Millisecond})
	defer s.Close()
	var wg sync.WaitGroup
	goodErr := make(chan error, 1)
	badErr := make(chan error, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := s.Infer(gestureInput(1))
		goodErr <- err
	}()
	go func() {
		defer wg.Done()
		_, err := s.Infer(tensor.New(tensor.FP32, 1, 3, 16, 16)) // wrong channels
		badErr <- err
	}()
	wg.Wait()
	if err := <-goodErr; err != nil {
		t.Errorf("well-formed request failed: %v", err)
	}
	if err := <-badErr; err == nil {
		t.Error("malformed request succeeded")
	}
}

func TestServeClose(t *testing.T) {
	s, _ := servedModel(t, ServeConfig{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Infer(gestureInput(1)); err == nil {
		t.Error("Infer succeeded after Close")
	}
}

func TestServeRejectsMultiOutputGraphs(t *testing.T) {
	b := nn.NewBuilder("t", nn.BuildOptions{Weights: true, Seed: 5})
	x := b.Input("input", 1, 8, 8)
	c := b.Conv(x, 1, 2, 3, 1, 1)
	r := b.Act(c, nn.OpReLU)
	g := b.Graph(c, r)
	if _, err := Serve(g, ServeConfig{}); err == nil {
		t.Error("Serve accepted a two-output graph")
	}
}
