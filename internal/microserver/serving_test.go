package microserver

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"vedliot/internal/accel"
	"vedliot/internal/inference"
	"vedliot/internal/nn"
	"vedliot/internal/tensor"
)

func servedModel(t *testing.T, cfg ServeConfig) (*Server, *nn.Graph) {
	t.Helper()
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	s, err := Serve(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, g
}

func gestureInput(seed int) *tensor.Tensor {
	in := tensor.New(tensor.FP32, 1, 1, 16, 16)
	for i := range in.F32 {
		in.F32[i] = float32((i*3+seed*7)%17)/17 - 0.5
	}
	return in
}

func TestServeMatchesDirectEngine(t *testing.T) {
	s, g := servedModel(t, ServeConfig{})
	defer s.Close()
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := gestureInput(1)
	want, err := eng.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Errorf("served result diverges by %g", d)
	}
}

func TestServeBatchesConcurrentClients(t *testing.T) {
	s, g := servedModel(t, ServeConfig{MaxBatch: 8, MaxWait: 20 * time.Millisecond})
	defer s.Close()
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			in := gestureInput(c)
			want, err := eng.RunSingle(in)
			if err != nil {
				errs <- err
				return
			}
			got, err := s.Infer(in)
			if err != nil {
				errs <- err
				return
			}
			if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
				errs <- &shapeErr{d}
				return
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := s.Stats()
	if st.Requests != clients {
		t.Errorf("stats recorded %d requests, want %d", st.Requests, clients)
	}
	if st.Batches >= clients {
		t.Errorf("no batching: %d dispatches for %d requests", st.Batches, clients)
	}
	if st.MeanBatch() <= 1 {
		t.Errorf("mean batch = %v, want > 1", st.MeanBatch())
	}
}

type shapeErr struct{ d float64 }

func (e *shapeErr) Error() string { return "served result diverges" }

func TestServeBadRequestFailsAlone(t *testing.T) {
	s, _ := servedModel(t, ServeConfig{MaxBatch: 4, MaxWait: 20 * time.Millisecond})
	defer s.Close()
	var wg sync.WaitGroup
	goodErr := make(chan error, 1)
	badErr := make(chan error, 1)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, err := s.Infer(gestureInput(1))
		goodErr <- err
	}()
	go func() {
		defer wg.Done()
		_, err := s.Infer(tensor.New(tensor.FP32, 1, 3, 16, 16)) // wrong channels
		badErr <- err
	}()
	wg.Wait()
	if err := <-goodErr; err != nil {
		t.Errorf("well-formed request failed: %v", err)
	}
	if err := <-badErr; err == nil {
		t.Error("malformed request succeeded")
	}
}

func TestServeClose(t *testing.T) {
	s, _ := servedModel(t, ServeConfig{})
	s.Close()
	s.Close() // idempotent
	if _, err := s.Infer(gestureInput(1)); err == nil {
		t.Error("Infer succeeded after Close")
	}
}

// multiHeadGraph builds a two-output graph (conv features + relu head),
// the shape Serve historically rejected.
func multiHeadGraph() *nn.Graph {
	b := nn.NewBuilder("t", nn.BuildOptions{Weights: true, Seed: 5})
	x := b.Input("input", 1, 8, 8)
	c := b.Conv(x, 1, 2, 3, 1, 1)
	r := b.Act(c, nn.OpReLU)
	return b.Graph(c, r)
}

func TestServeMultiHeadGraph(t *testing.T) {
	g := multiHeadGraph()
	s, err := Serve(g, ServeConfig{MaxBatch: 4, MaxWait: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 1, 8, 8)
	for i := range in.F32 {
		in.F32[i] = float32(i%7)/7 - 0.5
	}
	ins := map[string]*tensor.Tensor{g.Inputs[0]: in}
	want, err := eng.Run(ins)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent clients so the full maps flow through fused dispatches.
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := s.InferMap(ins)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(g.Outputs) {
				errs <- &shapeErr{float64(len(got))}
				return
			}
			for _, name := range g.Outputs {
				if d, _ := tensor.MaxAbsDiff(want[name], got[name]); d != 0 {
					errs <- &shapeErr{d}
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The single-tensor shortcut stays restricted to the 1-in/1-out shape.
	if _, err := s.Infer(in); err == nil {
		t.Error("Infer accepted a two-output graph; want InferMap-only")
	}
}

func TestServeBackendGeneric(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	dev, err := accel.FindDevice("Xavier NX")
	if err != nil {
		t.Fatal(err)
	}
	s, err := ServeBackend(g, accel.NewBackend(dev), ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got, want := s.Backend(), "accel:Xavier NX"; got != want {
		t.Errorf("Backend() = %q, want %q", got, want)
	}
	if s.Engine() == nil {
		t.Error("accel-backed server exposes no host engine")
	}
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	in := gestureInput(3)
	want, err := eng.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Errorf("accel-served result diverges from host engine by %g", d)
	}
}

// gatedBackend wraps a backend so tests can hold a dispatch in flight:
// every Run/RunBatch blocks until the gate channel yields.
type gatedBackend struct {
	inner inference.Backend
	gate  chan struct{}
}

func (b gatedBackend) Name() string { return "gated:" + b.inner.Name() }

func (b gatedBackend) Compile(g *nn.Graph, opts ...inference.Option) (inference.Executable, error) {
	exe, err := b.inner.Compile(g, opts...)
	if err != nil {
		return nil, err
	}
	return gatedExe{inner: exe, gate: b.gate}, nil
}

type gatedExe struct {
	inner inference.Executable
	gate  chan struct{}
}

func (e gatedExe) Run(in map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	<-e.gate
	return e.inner.Run(in)
}

func (e gatedExe) RunBatch(b []map[string]*tensor.Tensor) ([]map[string]*tensor.Tensor, error) {
	<-e.gate
	return e.inner.RunBatch(b)
}

// TestServeDrainFailsQueued pins the shutdown drain path: requests
// still queued when Close lands are failed, not executed.
func TestServeDrainFailsQueued(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	gate := make(chan struct{})
	s, err := ServeBackend(g, gatedBackend{inner: inference.CPUBackend{}, gate: gate}, ServeConfig{
		MaxBatch: 1, MaxWait: time.Nanosecond, QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	infer := func(res chan error) {
		_, err := s.Infer(gestureInput(1))
		res <- err
	}
	// First request occupies the dispatcher (blocked on the gate)...
	resA := make(chan error, 1)
	go infer(resA)
	// ...so the next two sit in the queue.
	resB, resC := make(chan error, 1), make(chan error, 1)
	waitQueued := func() {
		for i := 0; len(s.reqs) < 2 && i < 1000; i++ {
			time.Sleep(time.Millisecond)
		}
	}
	go infer(resB)
	go infer(resC)
	waitQueued()

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// Wait until Close has marked the server closed (it then blocks in
	// wg.Wait until the gated dispatch finishes).
	for {
		s.lifeMu.RLock()
		c := s.closed
		s.lifeMu.RUnlock()
		if c {
			break
		}
		time.Sleep(time.Millisecond)
	}
	gate <- struct{}{} // release the in-flight dispatch
	<-closed

	// Exactly one request was in flight (and must have been served);
	// the two still queued must have been failed by drain. Which of the
	// three goroutines won the race to the dispatcher is arbitrary.
	served, drained := 0, 0
	for _, res := range []chan error{resA, resB, resC} {
		if err := <-res; err == nil {
			served++
		} else {
			drained++
		}
	}
	if served != 1 || drained != 2 {
		t.Errorf("served %d / drained %d requests, want 1 served (in-flight) and 2 drain failures", served, drained)
	}
	if _, err := s.Infer(gestureInput(1)); err == nil {
		t.Error("Infer succeeded after Close")
	}
}

// TestServeInferRacingClose hammers Infer from many goroutines while
// Close lands mid-storm: every call must resolve (result or closed
// error) and the server must shut down cleanly.
func TestServeInferRacingClose(t *testing.T) {
	s, _ := servedModel(t, ServeConfig{MaxBatch: 4, MaxWait: time.Millisecond})
	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			out, err := s.Infer(gestureInput(c))
			if err == nil && out == nil {
				errs <- &shapeErr{0}
				return
			}
			errs <- err
		}(c)
	}
	s.Close()
	wg.Wait()
	close(errs)
	served, refused := 0, 0
	for err := range errs {
		if err == nil {
			served++
		} else {
			refused++
		}
	}
	if served+refused != clients {
		t.Errorf("%d of %d racing calls unresolved", clients-served-refused, clients)
	}
}

// TestServeFusedBatchFailureIsolation forces three requests into one
// fused dispatch with one malformed input: the dispatch fails, the
// individual retry isolates the offender, and the well-formed requests
// still succeed with engine-exact results.
func TestServeFusedBatchFailureIsolation(t *testing.T) {
	s, g := servedModel(t, ServeConfig{MaxBatch: 3, MaxWait: 2 * time.Second})
	defer s.Close()
	eng, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	goodIn := gestureInput(1)
	want, err := eng.RunSingle(goodIn)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	goodA, goodB, bad := make(chan error, 1), make(chan error, 1), make(chan error, 1)
	run := func(in *tensor.Tensor, res chan error, check bool) {
		defer wg.Done()
		out, err := s.Infer(in)
		if err == nil && check {
			if d, _ := tensor.MaxAbsDiff(want, out); d != 0 {
				err = &shapeErr{d}
			}
		}
		res <- err
	}
	wg.Add(3)
	go run(goodIn, goodA, true)
	go run(tensor.New(tensor.FP32, 1, 3, 16, 16), bad, false) // wrong channels
	go run(goodIn, goodB, true)
	wg.Wait()
	if err := <-goodA; err != nil {
		t.Errorf("well-formed request A failed: %v", err)
	}
	if err := <-goodB; err != nil {
		t.Errorf("well-formed request B failed: %v", err)
	}
	if err := <-bad; err == nil {
		t.Error("malformed request succeeded")
	}
	st := s.Stats()
	if st.Batches != 1 {
		t.Errorf("requests split across %d dispatches, want 1 fused batch", st.Batches)
	}
	if st.MaxBatch != 3 {
		t.Errorf("fused batch size %d, want 3", st.MaxBatch)
	}
}

func TestServeCompiledSharesOnePlan(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	exe, err := inference.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	// Two servers over one shared compiled plan — the plan-cache
	// deployment shape.
	a, err := ServeCompiled(g, exe, "cpu-engine", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ServeCompiled(g, exe, "cpu-engine", ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if a.Executable() != b.Executable() {
		t.Fatal("servers do not share the executable")
	}
	if a.Backend() != "cpu-engine" {
		t.Fatalf("backend name %q", a.Backend())
	}
	in := gestureInput(3)
	want, err := exe.RunSingle(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []*Server{a, b} {
		got, err := s.Infer(in)
		if err != nil {
			t.Fatal(err)
		}
		if d, _ := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("served output differs from shared plan by %g", d)
		}
	}
	// Closing one server must not break the other (the plan is shared,
	// never owned).
	a.Close()
	if _, err := b.Infer(in); err != nil {
		t.Fatalf("second server failed after first closed: %v", err)
	}
}

func TestServeCompiledValidates(t *testing.T) {
	g := nn.GestureNet(16, 4, nn.BuildOptions{Weights: true, Seed: 77})
	if _, err := ServeCompiled(g, nil, "cpu-engine", ServeConfig{}); err == nil {
		t.Fatal("nil executable accepted")
	}
}

// TestSubmitMapCtxCancelledBeforeDispatch pins the context path through
// the batch queue: a request whose context dies while it is still
// queued must resolve with the context error without ever reaching the
// engine, and must not count as a served request.
func TestSubmitMapCtxCancelledBeforeDispatch(t *testing.T) {
	s, g := servedModel(t, ServeConfig{MaxBatch: 4, MaxWait: 40 * time.Millisecond})
	defer s.Close()
	ins := map[string]*tensor.Tensor{g.Inputs[0]: gestureInput(1)}

	ctx, cancel := context.WithCancel(context.Background())
	doomed, err := s.SubmitMapCtx(ctx, ins)
	if err != nil {
		t.Fatal(err)
	}
	// The dispatcher is now inside its 40ms collect window. Cancel the
	// first request and add a live one; both land in the same dispatch.
	cancel()
	live, err := s.SubmitMapCtx(context.Background(), ins)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doomed.Wait(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled request resolved with %v, want context.Canceled", err)
	}
	if _, err := live.Wait(); err != nil {
		t.Errorf("live request failed: %v", err)
	}
	st := s.Stats()
	if st.Cancelled != 1 {
		t.Errorf("stats recorded %d cancelled, want 1", st.Cancelled)
	}
	if st.Requests != 1 {
		t.Errorf("stats recorded %d dispatched requests, want 1 (cancelled must not count)", st.Requests)
	}

	// An already-dead context is refused at submission.
	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := s.SubmitMapCtx(dead, ins); !errors.Is(err, context.Canceled) {
		t.Errorf("submit on dead context returned %v, want context.Canceled", err)
	}
}
