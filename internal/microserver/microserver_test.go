package microserver

import (
	"strings"
	"testing"

	"vedliot/internal/accel"
)

func TestProfilesCoverAllFormFactors(t *testing.T) {
	seen := map[FormFactor]bool{}
	for _, p := range Profiles() {
		seen[p.FormFactor] = true
		for _, r := range []Rating{p.Size, p.IOFlexibility, p.Performance, p.Architectures, p.MarketShare} {
			if r < 1 || r > 5 {
				t.Errorf("%v has rating %d outside 1-5", p.FormFactor, r)
			}
		}
	}
	for f := FormFactor(0); f < NumFormFactors; f++ {
		if !seen[f] {
			t.Errorf("no profile for %v", f)
		}
		if strings.HasPrefix(f.String(), "FormFactor(") {
			t.Errorf("form factor %d unnamed", int(f))
		}
	}
}

func TestFig2Ordering(t *testing.T) {
	// Structural facts from Fig. 2: COM-HPC Server is the largest and
	// most performant; RPi CM4 the smallest with lowest performance;
	// SMARC supports the broadest architecture set.
	get := func(f FormFactor) FormFactorProfile {
		p, err := ProfileFor(f)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if !(get(COMHPCServer).Size < get(RPiCM4).Size) {
		t.Error("COM-HPC Server should be larger (lower size rating) than RPi CM4")
	}
	if !(get(COMHPCServer).Performance > get(RPiCM4).Performance) {
		t.Error("COM-HPC Server should outperform RPi CM4")
	}
	best := get(SMARC).Architectures
	for _, p := range Profiles() {
		if p.Architectures > best {
			t.Errorf("%v exceeds SMARC architecture breadth", p.FormFactor)
		}
	}
}

func TestURECSAcceptsAndRejects(t *testing.T) {
	u := NewURECS()
	nx, err := FindModule("Jetson Xavier NX")
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Insert(0, nx); err != nil {
		t.Fatalf("uRECS rejected Jetson NX: %v", err)
	}
	// Kria via adapter.
	kria, _ := FindModule("Xilinx Kria K26")
	if err := u.Insert(1, kria); err != nil {
		t.Fatalf("uRECS rejected Kria adapter: %v", err)
	}
	// COM-HPC must not fit.
	hpc, _ := FindModule("COM-HPC Server x86")
	if err := u.Insert(2, hpc); err == nil {
		t.Error("uRECS accepted COM-HPC Server")
	}
	// Occupied slot.
	if err := u.Insert(0, kria); err == nil {
		t.Error("insert into occupied slot succeeded")
	}
	// Invalid slot.
	if err := u.Insert(9, kria); err == nil {
		t.Error("insert into invalid slot succeeded")
	}
}

func TestURECSPowerBudget(t *testing.T) {
	// uRECS targets < 15 W; inserting two 15 W Jetson NX modules must
	// fail on the second.
	u := NewURECS()
	nx1, _ := FindModule("Jetson Xavier NX")
	nx2, _ := FindModule("Jetson Xavier NX")
	if err := u.Insert(0, nx1); err != nil {
		t.Fatal(err)
	}
	if err := u.Insert(1, nx2); err == nil {
		t.Error("uRECS power budget not enforced")
	}
	// A SMARC module still fits.
	smarc, _ := FindModule("SMARC ARM")
	if err := u.Insert(1, smarc); err != nil {
		t.Errorf("SMARC rejected: %v", err)
	}
	if u.MaxPowerW() > 15 {
		t.Errorf("uRECS max power %.1f W exceeds envelope", u.MaxPowerW())
	}
}

func TestRECSBoxAndTRECS(t *testing.T) {
	box := NewRECSBox(4)
	xeon, _ := FindModule("COM Express Xeon-D")
	if err := box.Insert(0, xeon); err != nil {
		t.Fatal(err)
	}
	hpc, _ := FindModule("COM-HPC Server x86")
	if err := box.Insert(1, hpc); err == nil {
		t.Error("RECS|Box accepted COM-HPC")
	}

	tr := NewTRECS(3)
	if err := tr.Insert(0, hpc); err != nil {
		t.Fatal(err)
	}
	zu, _ := FindModule("COM-HPC Xilinx ZU+")
	if err := tr.Insert(1, zu); err != nil {
		t.Fatal(err)
	}
	if len(tr.Modules()) != 2 {
		t.Errorf("t.RECS module count = %d", len(tr.Modules()))
	}
}

func TestPowerModel(t *testing.T) {
	u := NewURECS()
	nx, _ := FindModule("Jetson Xavier NX")
	if err := u.Insert(0, nx); err != nil {
		t.Fatal(err)
	}
	idle := u.PowerW(nil)
	full := u.PowerW(map[int]float64{0: 1})
	if idle != u.BaseboardW+nx.IdleW {
		t.Errorf("idle power = %v", idle)
	}
	if full != u.BaseboardW+nx.MaxW {
		t.Errorf("full power = %v", full)
	}
	// Clamping.
	over := u.PowerW(map[int]float64{0: 5})
	if over != full {
		t.Errorf("utilization not clamped: %v vs %v", over, full)
	}
}

func TestRemoveAndPowerGate(t *testing.T) {
	u := NewURECS()
	nx, _ := FindModule("Jetson Xavier NX")
	if err := u.Insert(0, nx); err != nil {
		t.Fatal(err)
	}
	if err := u.SetPower(0, false); err != nil {
		t.Fatal(err)
	}
	if u.MaxPowerW() != u.BaseboardW {
		t.Errorf("gated module still drawing: %v", u.MaxPowerW())
	}
	m, err := u.Remove(0)
	if err != nil || m.Name != nx.Name {
		t.Fatalf("remove = %v, %v", m, err)
	}
	if _, err := u.Remove(0); err == nil {
		t.Error("double remove succeeded")
	}
	if err := u.SetPower(0, true); err == nil {
		t.Error("powered an empty slot")
	}
	// Run-time exchange: a different module now fits.
	smarc, _ := FindModule("SMARC FPGA-SoC")
	if err := u.Insert(0, smarc); err != nil {
		t.Errorf("exchange failed: %v", err)
	}
}

func TestSnapshot(t *testing.T) {
	u := NewURECS()
	nx, _ := FindModule("Jetson Xavier NX")
	if err := u.Insert(0, nx); err != nil {
		t.Fatal(err)
	}
	snap := u.Snapshot(map[int]float64{0: 0.5})
	if snap.Chassis != "uRECS" || len(snap.PerSlot) != len(u.Slots) {
		t.Fatalf("bad snapshot %+v", snap)
	}
	r := snap.PerSlot[0]
	if r.Module != nx.Name || !r.Powered {
		t.Errorf("slot reading %+v", r)
	}
	if r.TempC <= 25 {
		t.Errorf("loaded module at ambient temp %v", r.TempC)
	}
	if snap.PerSlot[1].TempC != 25 {
		t.Errorf("empty slot temp %v", snap.PerSlot[1].TempC)
	}
}

func TestModuleAcceleratorLinksResolve(t *testing.T) {
	// Every accelerator reference in the module catalogue must exist in
	// the accel database.
	for _, m := range StandardModules() {
		if m.Accelerator == "" {
			continue
		}
		if _, err := accel.FindDevice(m.Accelerator); err != nil {
			t.Errorf("module %s references unknown accelerator %s", m.Name, m.Accelerator)
		}
	}
}

func TestModuleValidate(t *testing.T) {
	bad := &Module{Name: "", MaxW: 5}
	if err := bad.Validate(); err == nil {
		t.Error("accepted empty name")
	}
	bad2 := &Module{Name: "x", IdleW: 10, MaxW: 5}
	if err := bad2.Validate(); err == nil {
		t.Error("accepted idle > max")
	}
}

func TestFindModule(t *testing.T) {
	if _, err := FindModule("RPi CM4"); err != nil {
		t.Error(err)
	}
	if _, err := FindModule("bogus"); err == nil {
		t.Error("found bogus module")
	}
}
