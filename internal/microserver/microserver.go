// Package microserver models the RECS hardware platform family
// (§II-A): RECS|Box for the cloud, t.RECS for the near edge and uRECS
// for the embedded/far edge, together with the Computer-on-Module form
// factors of Fig. 2. The model captures what the paper's platform
// delivers: slot compatibility, power budgets, baseboard overheads,
// monitoring, and run-time exchange of heterogeneous compute modules.
package microserver

import (
	"fmt"
	"sort"
)

// FormFactor enumerates the COM standards of Fig. 2.
type FormFactor int

// Form factors, ordered roughly by module size (large to small).
const (
	COMHPCServer FormFactor = iota
	COMHPCClient
	COMExpress
	JetsonAGX
	SMARC
	JetsonNX
	XilinxKria
	RPiCM4
	NumFormFactors
)

// String names the form factor.
func (f FormFactor) String() string {
	switch f {
	case COMHPCServer:
		return "COM-HPC Server"
	case COMHPCClient:
		return "COM-HPC Client"
	case COMExpress:
		return "COM Express"
	case JetsonAGX:
		return "Jetson AGX Xavier"
	case SMARC:
		return "SMARC"
	case JetsonNX:
		return "Jetson Xavier NX"
	case XilinxKria:
		return "Xilinx Kria"
	case RPiCM4:
		return "Raspberry Pi CM4"
	}
	return fmt.Sprintf("FormFactor(%d)", int(f))
}

// Rating is an ordinal 1 (lowest) to 5 (highest) score on one Fig. 2
// axis.
type Rating int

// FormFactorProfile captures the five comparison axes of Fig. 2.
// "Size" follows the figure's convention: higher = smaller module.
type FormFactorProfile struct {
	FormFactor    FormFactor
	Size          Rating // higher = more compact
	IOFlexibility Rating
	Performance   Rating
	Architectures Rating // breadth of supported CPU architectures
	MarketShare   Rating
}

// Profiles returns the Fig. 2 comparison data for all form factors.
func Profiles() []FormFactorProfile {
	return []FormFactorProfile{
		{COMHPCServer, 1, 5, 5, 2, 2},
		{COMHPCClient, 2, 4, 4, 2, 2},
		{COMExpress, 2, 4, 4, 3, 5},
		{JetsonAGX, 3, 2, 4, 1, 3},
		{SMARC, 4, 3, 2, 5, 4},
		{JetsonNX, 4, 2, 3, 1, 3},
		{XilinxKria, 4, 3, 3, 2, 2},
		{RPiCM4, 5, 1, 1, 1, 5},
	}
}

// ProfileFor returns the Fig. 2 profile of one form factor.
func ProfileFor(f FormFactor) (FormFactorProfile, error) {
	for _, p := range Profiles() {
		if p.FormFactor == f {
			return p, nil
		}
	}
	return FormFactorProfile{}, fmt.Errorf("microserver: no profile for %v", f)
}

// Arch is a microserver's instruction-set architecture.
type Arch string

// Architectures appearing in the platform.
const (
	ArchX86   Arch = "x86"
	ArchARM   Arch = "arm64"
	ArchFPGA  Arch = "fpga"
	ArchRISCV Arch = "riscv"
)

// Module is one pluggable microserver or accelerator module.
type Module struct {
	Name       string
	FormFactor FormFactor
	Arch       Arch
	IdleW      float64
	MaxW       float64
	MemoryGB   float64
	// Accelerator optionally names a device model from internal/accel.
	Accelerator string
	// SoC optionally names an emulated system-on-chip the module serves
	// with instead of a host engine or accel device model: "vexriscv-cfu"
	// (RISC-V core with the vector-MAC custom function unit) or
	// "vexriscv" (the same core, scalar only). SoC modules execute INT8
	// firmware, so deployments must carry a calibration schema.
	SoC string
}

// Validate checks module plausibility.
func (m *Module) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("microserver: module without name")
	}
	if m.MaxW <= 0 || m.IdleW < 0 || m.IdleW > m.MaxW {
		return fmt.Errorf("microserver: module %s power range [%v, %v] invalid", m.Name, m.IdleW, m.MaxW)
	}
	return nil
}

// Slot is one chassis position.
type Slot struct {
	Index int
	// Accepts lists directly supported form factors.
	Accepts []FormFactor
	// AdapterFor lists form factors supported via adapter PCBs
	// (uRECS integrates Kria and RPi CM4 this way).
	AdapterFor []FormFactor

	module  *Module
	powered bool
}

// Module returns the inserted module or nil.
func (s *Slot) Module() *Module { return s.module }

// Powered reports whether the slot is power-gated on.
func (s *Slot) Powered() bool { return s.powered && s.module != nil }

func (s *Slot) accepts(f FormFactor) (ok, viaAdapter bool) {
	for _, a := range s.Accepts {
		if a == f {
			return true, false
		}
	}
	for _, a := range s.AdapterFor {
		if a == f {
			return true, true
		}
	}
	return false, false
}

// Chassis is one RECS platform instance.
type Chassis struct {
	Name string
	// Tier labels the computing continuum position: "embedded/far edge",
	// "near edge" or "cloud".
	Tier string
	// BaseboardW is the always-on infrastructure power (fabric, BMC).
	BaseboardW float64
	// BudgetW caps total chassis power (0 = unlimited).
	BudgetW float64
	Slots   []*Slot
	// FabricGbps lists the communication-infrastructure speeds.
	FabricGbps []float64
}

// NewRECSBox builds the cloud-tier RECS|Box: COM Express carriers with
// 1G/10G Ethernet plus high-speed low-latency links.
func NewRECSBox(slots int) *Chassis {
	c := &Chassis{
		Name: "RECS|Box", Tier: "cloud",
		BaseboardW: 40, FabricGbps: []float64{1, 10, 40},
	}
	for i := 0; i < slots; i++ {
		c.Slots = append(c.Slots, &Slot{Index: i, Accepts: []FormFactor{COMExpress}})
	}
	return c
}

// NewTRECS builds the near-edge t.RECS: COM-HPC Server and Client
// modules.
func NewTRECS(slots int) *Chassis {
	c := &Chassis{
		Name: "t.RECS", Tier: "near edge",
		BaseboardW: 15, FabricGbps: []float64{1, 10},
	}
	for i := 0; i < slots; i++ {
		c.Slots = append(c.Slots, &Slot{
			Index:   i,
			Accepts: []FormFactor{COMHPCServer, COMHPCClient},
		})
	}
	return c
}

// NewURECS builds the embedded/far-edge uRECS developed within VEDLIoT:
// compact, low cost, and targeting a power envelope below 15 W. SMARC
// and Jetson Xavier NX modules are native; Xilinx Kria and Raspberry Pi
// compute modules attach via adapter PCBs; USB/M.2 extension slots take
// additional accelerators.
func NewURECS() *Chassis {
	c := &Chassis{
		Name: "uRECS", Tier: "embedded/far edge",
		BaseboardW: 1.5, BudgetW: 15, FabricGbps: []float64{1},
	}
	for i := 0; i < 2; i++ {
		c.Slots = append(c.Slots, &Slot{
			Index:      i,
			Accepts:    []FormFactor{SMARC, JetsonNX},
			AdapterFor: []FormFactor{XilinxKria, RPiCM4},
		})
	}
	// USB / M.2 extension positions for accelerator sticks.
	c.Slots = append(c.Slots, &Slot{Index: 2, Accepts: []FormFactor{RPiCM4}, AdapterFor: nil})
	return c
}

// Insert places a module in slot idx, validating form-factor
// compatibility and the chassis power budget. The slot powers on.
func (c *Chassis) Insert(idx int, m *Module) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if idx < 0 || idx >= len(c.Slots) {
		return fmt.Errorf("microserver: %s has no slot %d", c.Name, idx)
	}
	slot := c.Slots[idx]
	if slot.module != nil {
		return fmt.Errorf("microserver: slot %d occupied by %s", idx, slot.module.Name)
	}
	ok, _ := slot.accepts(m.FormFactor)
	if !ok {
		return fmt.Errorf("microserver: slot %d of %s does not accept %v", idx, c.Name, m.FormFactor)
	}
	// The budget bounds the compute-module envelope; baseboard overhead
	// is reported separately by MaxPowerW/PowerW.
	if c.BudgetW > 0 && c.modulePowerW()+m.MaxW > c.BudgetW {
		return fmt.Errorf("microserver: inserting %s (%.1f W) exceeds %s module budget %.1f W (current %.1f W)",
			m.Name, m.MaxW, c.Name, c.BudgetW, c.modulePowerW())
	}
	slot.module = m
	slot.powered = true
	return nil
}

// Remove extracts the module from slot idx (run-time exchange of
// computing resources).
func (c *Chassis) Remove(idx int) (*Module, error) {
	if idx < 0 || idx >= len(c.Slots) {
		return nil, fmt.Errorf("microserver: %s has no slot %d", c.Name, idx)
	}
	slot := c.Slots[idx]
	if slot.module == nil {
		return nil, fmt.Errorf("microserver: slot %d empty", idx)
	}
	m := slot.module
	slot.module = nil
	slot.powered = false
	return m, nil
}

// SetPower gates an occupied slot on or off (power-aware resource
// management).
func (c *Chassis) SetPower(idx int, on bool) error {
	if idx < 0 || idx >= len(c.Slots) {
		return fmt.Errorf("microserver: %s has no slot %d", c.Name, idx)
	}
	if c.Slots[idx].module == nil {
		return fmt.Errorf("microserver: slot %d empty", idx)
	}
	c.Slots[idx].powered = on
	return nil
}

// MaxPowerW returns worst-case chassis power with all powered modules at
// full load.
func (c *Chassis) MaxPowerW() float64 {
	return c.BaseboardW + c.modulePowerW()
}

// modulePowerW sums the worst-case power of all powered modules.
func (c *Chassis) modulePowerW() float64 {
	var p float64
	for _, s := range c.Slots {
		if s.Powered() {
			p += s.module.MaxW
		}
	}
	return p
}

// PowerW returns chassis power given a per-slot utilization map in
// [0,1]; missing slots idle.
func (c *Chassis) PowerW(util map[int]float64) float64 {
	p := c.BaseboardW
	for _, s := range c.Slots {
		if !s.Powered() {
			continue
		}
		u := util[s.Index]
		if u < 0 {
			u = 0
		}
		if u > 1 {
			u = 1
		}
		p += s.module.IdleW + u*(s.module.MaxW-s.module.IdleW)
	}
	return p
}

// Monitoring is one telemetry snapshot, the substrate for the
// VEDLIoT monitoring middleware.
type Monitoring struct {
	Chassis string
	TotalW  float64
	PerSlot []SlotReading
}

// SlotReading is one slot's telemetry.
type SlotReading struct {
	Slot    int
	Module  string
	Powered bool
	PowerW  float64
	TempC   float64
}

// Snapshot produces a monitoring reading for the given utilization.
// Temperature follows a simple thermal model: 25C ambient plus 2C per
// watt of module dissipation.
func (c *Chassis) Snapshot(util map[int]float64) Monitoring {
	m := Monitoring{Chassis: c.Name, TotalW: c.PowerW(util)}
	for _, s := range c.Slots {
		r := SlotReading{Slot: s.Index}
		if s.module != nil {
			r.Module = s.module.Name
			r.Powered = s.powered
		}
		if s.Powered() {
			u := util[s.Index]
			if u < 0 {
				u = 0
			}
			if u > 1 {
				u = 1
			}
			r.PowerW = s.module.IdleW + u*(s.module.MaxW-s.module.IdleW)
			r.TempC = 25 + 2*r.PowerW
		} else {
			r.TempC = 25
		}
		m.PerSlot = append(m.PerSlot, r)
	}
	return m
}

// Modules returns the inserted modules sorted by slot index.
func (c *Chassis) Modules() []*Module {
	var out []*Module
	for _, s := range c.Slots {
		if s.module != nil {
			out = append(out, s.module)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// StandardModules returns a catalogue of module definitions matching the
// paper's Fig. 1/Fig. 2 hardware matrix.
func StandardModules() []*Module {
	return []*Module{
		{Name: "COM-HPC Server x86", FormFactor: COMHPCServer, Arch: ArchX86, IdleW: 35, MaxW: 150, MemoryGB: 128},
		{Name: "COM-HPC Xilinx ZU+", FormFactor: COMHPCClient, Arch: ArchFPGA, IdleW: 8, MaxW: 40, MemoryGB: 16, Accelerator: "ZU15 2xB4096"},
		{Name: "COM Express Xeon-D", FormFactor: COMExpress, Arch: ArchX86, IdleW: 25, MaxW: 45, MemoryGB: 64, Accelerator: "D1577"},
		{Name: "COM Express EPYC", FormFactor: COMExpress, Arch: ArchX86, IdleW: 35, MaxW: 100, MemoryGB: 64, Accelerator: "Epic3451"},
		{Name: "Jetson AGX Xavier", FormFactor: JetsonAGX, Arch: ArchARM, IdleW: 10, MaxW: 30, MemoryGB: 32, Accelerator: "Xavier AGX (HP)"},
		// The NX module is catalogued at its 10 W preset, the profile a
		// power-constrained uRECS runs it in.
		{Name: "Jetson Xavier NX", FormFactor: JetsonNX, Arch: ArchARM, IdleW: 3, MaxW: 10, MemoryGB: 8, Accelerator: "Xavier NX"},
		{Name: "SMARC ARM", FormFactor: SMARC, Arch: ArchARM, IdleW: 1, MaxW: 3, MemoryGB: 4},
		{Name: "SMARC FPGA-SoC", FormFactor: SMARC, Arch: ArchFPGA, IdleW: 3, MaxW: 9, MemoryGB: 4, Accelerator: "ZU3 B2304"},
		{Name: "Xilinx Kria K26", FormFactor: XilinxKria, Arch: ArchFPGA, IdleW: 2, MaxW: 5, MemoryGB: 4, Accelerator: "ZU3 B2304"},
		{Name: "RPi CM4", FormFactor: RPiCM4, Arch: ArchARM, IdleW: 1.5, MaxW: 7, MemoryGB: 8},
		{Name: "Coral SoM", FormFactor: RPiCM4, Arch: ArchARM, IdleW: 0.5, MaxW: 2, MemoryGB: 1, Accelerator: "EdgeTPU SoM"},
		// The far-edge RISC-V tier: a CM4-form-factor carrier for the
		// emulated VexRiscv-class SoC with the vector-MAC CFU (§II-B),
		// serving INT8 models through cycle-accurate firmware.
		{Name: "RISC-V CFU SoM", FormFactor: RPiCM4, Arch: ArchRISCV, IdleW: 0.2, MaxW: 1, MemoryGB: 0.25, SoC: "vexriscv-cfu"},
	}
}

// FindModule returns the named catalogue module.
func FindModule(name string) (*Module, error) {
	for _, m := range StandardModules() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("microserver: unknown module %q", name)
}
