package wasm

import (
	"errors"
	"testing"
	"testing/quick"
)

// mustVM builds a single-function module and returns a VM.
func mustVM(t *testing.T, f *Func, hosts ...HostFunc) *VM {
	t.Helper()
	mod := &Module{Funcs: []*Func{f}, Hosts: hosts, MemPages: 1}
	if err := mod.Prepare(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(mod)
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestArithmetic(t *testing.T) {
	a := &Asm{}
	a.Get(0).Get(1).I(OpI32Add)
	a.Get(0).Get(1).I(OpI32Mul)
	a.I(OpI32Sub) // (a+b) - a*b
	a.I(OpReturn)
	vm := mustVM(t, &Func{Name: "f", NumParams: 2, Body: a.Body()})
	got, err := vm.CallNamed("f", 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7-12 {
		t.Errorf("got %d, want -5", got)
	}
}

func TestDivTraps(t *testing.T) {
	a := &Asm{}
	a.Get(0).Get(1).I(OpI32DivS).I(OpReturn)
	vm := mustVM(t, &Func{Name: "div", NumParams: 2, Body: a.Body()})
	if _, err := vm.CallNamed("div", 10, 0); !errors.Is(err, ErrTrap) {
		t.Errorf("div by zero: %v", err)
	}
	if _, err := vm.CallNamed("div", -1<<31, -1); !errors.Is(err, ErrTrap) {
		t.Errorf("signed overflow: %v", err)
	}
	if v, err := vm.CallNamed("div", 12, 4); err != nil || v != 3 {
		t.Errorf("12/4 = %d, %v", v, err)
	}
}

func TestLocalsAndSelect(t *testing.T) {
	// max(a, b) via select.
	a := &Asm{}
	a.Get(0).Get(1).Get(0).Get(1).I(OpI32GtS).I(OpSelect).I(OpReturn)
	vm := mustVM(t, &Func{Name: "max", NumParams: 2, Body: a.Body()})
	cases := [][3]int32{{3, 5, 5}, {9, -2, 9}, {4, 4, 4}}
	for _, c := range cases {
		got, err := vm.CallNamed("max", c[0], c[1])
		if err != nil || got != c[2] {
			t.Errorf("max(%d,%d) = %d, %v", c[0], c[1], got, err)
		}
	}
}

func TestLoopSumsRange(t *testing.T) {
	// sum 1..n: locals 0=n 1=i 2=acc
	a := &Asm{}
	a.Const(1).Set(1)
	a.I(OpBlock)
	a.I(OpLoop)
	// if i > n break
	a.Get(1).Get(0).I(OpI32GtS).Imm(OpBrIf, 1)
	a.Get(2).Get(1).I(OpI32Add).Set(2)
	a.Get(1).Const(1).I(OpI32Add).Set(1)
	a.Imm(OpBr, 0)
	a.I(OpEnd)
	a.I(OpEnd)
	a.Get(2).I(OpReturn)
	vm := mustVM(t, &Func{Name: "sum", NumParams: 1, NumLocals: 2, Body: a.Body()})
	got, err := vm.CallNamed("sum", 10)
	if err != nil || got != 55 {
		t.Fatalf("sum(10) = %d, %v", got, err)
	}
	got, err = vm.CallNamed("sum", 0)
	if err != nil || got != 0 {
		t.Fatalf("sum(0) = %d, %v", got, err)
	}
}

func TestMemoryLoadStore(t *testing.T) {
	a := &Asm{}
	a.Const(64).Get(0).I(OpI32Store)     // mem[64] = arg
	a.Const(64).I(OpI32Load).I(OpReturn) // return mem[64]
	vm := mustVM(t, &Func{Name: "rt", NumParams: 1, Body: a.Body()})
	got, err := vm.CallNamed("rt", -12345)
	if err != nil || got != -12345 {
		t.Fatalf("roundtrip = %d, %v", got, err)
	}
	// Out-of-bounds store traps.
	b := &Asm{}
	b.Const(PageSize).Const(1).I(OpI32Store).Const(0).I(OpReturn)
	vm2 := mustVM(t, &Func{Name: "oob", Body: b.Body()})
	if _, err := vm2.CallNamed("oob"); !errors.Is(err, ErrTrap) {
		t.Errorf("oob store: %v", err)
	}
}

func TestByteAccess(t *testing.T) {
	a := &Asm{}
	a.Const(10).Const(0x1ff).I(OpI32Store8) // truncated to 0xff
	a.Const(10).I(OpI32Load8U).I(OpReturn)
	vm := mustVM(t, &Func{Name: "b", Body: a.Body()})
	got, err := vm.CallNamed("b")
	if err != nil || got != 0xff {
		t.Fatalf("byte = %#x, %v", got, err)
	}
}

func TestHostCall(t *testing.T) {
	calls := 0
	host := HostFunc{Name: "add10", NumParams: 1, Fn: func(vm *VM, args []int32) (int32, error) {
		calls++
		return args[0] + 10, nil
	}}
	a := &Asm{}
	a.Get(0).Imm(OpCall, 0).I(OpReturn) // host index 0
	vm := mustVM(t, &Func{Name: "f", NumParams: 1, Body: a.Body()}, host)
	got, err := vm.CallNamed("f", 5)
	if err != nil || got != 15 {
		t.Fatalf("host call = %d, %v", got, err)
	}
	if calls != 1 || vm.HostCalls != 1 {
		t.Errorf("host calls = %d / %d", calls, vm.HostCalls)
	}
}

func TestInterFunctionCall(t *testing.T) {
	// f(x) = g(x) + 1, g(x) = x*2. Module funcs at indices 0 and 1.
	g := &Asm{}
	g.Get(0).Const(2).I(OpI32Mul).I(OpReturn)
	f := &Asm{}
	f.Get(0).Imm(OpCall, 0).Const(1).I(OpI32Add).I(OpReturn)
	mod := &Module{Funcs: []*Func{
		{Name: "g", NumParams: 1, Body: g.Body()},
		{Name: "f", NumParams: 1, Body: f.Body()},
	}, MemPages: 1}
	if err := mod.Prepare(); err != nil {
		t.Fatal(err)
	}
	vm, err := NewVM(mod)
	if err != nil {
		t.Fatal(err)
	}
	got, err := vm.CallNamed("f", 21)
	if err != nil || got != 43 {
		t.Fatalf("f(21) = %d, %v", got, err)
	}
}

func TestFuelExhaustion(t *testing.T) {
	// Infinite loop must stop at the fuel limit.
	a := &Asm{}
	a.I(OpLoop)
	a.Imm(OpBr, 0)
	a.I(OpEnd)
	vm := mustVM(t, &Func{Name: "spin", Body: a.Body()})
	vm.Fuel = 10000
	if _, err := vm.CallNamed("spin"); !errors.Is(err, ErrFuel) {
		t.Errorf("spin = %v, want fuel error", err)
	}
	if vm.Executed < 10000 {
		t.Errorf("executed %d", vm.Executed)
	}
}

func TestUnreachableTraps(t *testing.T) {
	a := &Asm{}
	a.I(OpUnreachable)
	vm := mustVM(t, &Func{Name: "u", Body: a.Body()})
	if _, err := vm.CallNamed("u"); !errors.Is(err, ErrTrap) {
		t.Errorf("unreachable = %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	// Unmatched End.
	bad := &Module{Funcs: []*Func{{Name: "x", Body: []Instr{{Op: OpEnd}}}}}
	if err := bad.Prepare(); err == nil {
		t.Error("unmatched end accepted")
	}
	// Unclosed block.
	bad2 := &Module{Funcs: []*Func{{Name: "x", Body: []Instr{{Op: OpBlock}}}}}
	if err := bad2.Prepare(); err == nil {
		t.Error("unclosed block accepted")
	}
	// Branch depth out of range.
	bad3 := &Module{Funcs: []*Func{{Name: "x", Body: []Instr{
		{Op: OpBlock}, {Op: OpBr, Imm: 5}, {Op: OpEnd},
	}}}}
	if err := bad3.Prepare(); err == nil {
		t.Error("deep branch accepted")
	}
	// Unknown call target.
	bad4 := &Module{Funcs: []*Func{{Name: "x", Body: []Instr{{Op: OpCall, Imm: 9}}}}}
	if err := bad4.Prepare(); err == nil {
		t.Error("unknown callee accepted")
	}
	// Bad local index.
	bad5 := &Module{Funcs: []*Func{{Name: "x", Body: []Instr{{Op: OpLocalGet, Imm: 3}}}}}
	if err := bad5.Prepare(); err == nil {
		t.Error("bad local accepted")
	}
	// Duplicate name.
	bad6 := &Module{Funcs: []*Func{{Name: "x"}, {Name: "x"}}}
	if err := bad6.Prepare(); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestStackUnderflowDetected(t *testing.T) {
	a := &Asm{}
	a.I(OpI32Add) // empty stack
	vm := mustVM(t, &Func{Name: "x", Body: a.Body()})
	if _, err := vm.CallNamed("x"); err == nil {
		t.Error("stack underflow not detected")
	}
}

func TestMemoryGrow(t *testing.T) {
	a := &Asm{}
	a.Const(1).I(OpMemoryGrow).I(OpDrop)
	a.I(OpMemorySize).I(OpReturn)
	vm := mustVM(t, &Func{Name: "g", Body: a.Body()})
	got, err := vm.CallNamed("g")
	if err != nil || got != 2 {
		t.Fatalf("pages = %d, %v", got, err)
	}
}

func TestCallDepthBounded(t *testing.T) {
	// f calls itself forever.
	a := &Asm{}
	a.Imm(OpCall, 0).I(OpReturn)
	vm := mustVM(t, &Func{Name: "rec", Body: a.Body()})
	if _, err := vm.CallNamed("rec"); !errors.Is(err, ErrTrap) {
		t.Errorf("infinite recursion = %v", err)
	}
}

func TestArithmeticMatchesGoProperty(t *testing.T) {
	ops := []struct {
		op Op
		f  func(a, b int32) int32
	}{
		{OpI32Add, func(a, b int32) int32 { return a + b }},
		{OpI32Sub, func(a, b int32) int32 { return a - b }},
		{OpI32Mul, func(a, b int32) int32 { return a * b }},
		{OpI32And, func(a, b int32) int32 { return a & b }},
		{OpI32Or, func(a, b int32) int32 { return a | b }},
		{OpI32Xor, func(a, b int32) int32 { return a ^ b }},
		{OpI32Shl, func(a, b int32) int32 { return a << (uint32(b) & 31) }},
		{OpI32ShrU, func(a, b int32) int32 { return int32(uint32(a) >> (uint32(b) & 31)) }},
		{OpI32ShrS, func(a, b int32) int32 { return a >> (uint32(b) & 31) }},
	}
	for _, o := range ops {
		a := &Asm{}
		a.Get(0).Get(1).I(o.op).I(OpReturn)
		vm := mustVM(t, &Func{Name: "f", NumParams: 2, Body: a.Body()})
		op := o
		f := func(x, y int32) bool {
			got, err := vm.CallNamed("f", x, y)
			return err == nil && got == op.f(x, y)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("op %d: %v", o.op, err)
		}
	}
}
