// Package wasm implements a small WebAssembly-style stack virtual
// machine: i32 arithmetic, structured control flow, linear memory,
// module-local functions and imported host functions.
//
// It is the trusted-runtime substrate of the paper's §IV-C, which
// builds on "an open-source WebAssembly runtime implementation ... to
// build a trusted runtime environment without dealing with
// language-specific APIs" (Twine [17]). Programs for the VM are
// hand-assembled with the Asm builder (internal/minisql ships a storage
// engine written this way); execution is interpreted and fuel-metered
// so enclave overhead studies get real instruction counts.
package wasm

import (
	"errors"
	"fmt"
)

// Op is a VM opcode.
type Op uint8

// Opcodes (a compact i32-only subset of the WebAssembly MVP).
const (
	OpUnreachable Op = iota
	OpNop
	OpBlock // label target = matching end
	OpLoop  // label target = loop start
	OpEnd
	OpBr   // Imm = relative label depth
	OpBrIf // Imm = relative label depth
	OpReturn
	OpCall // Imm = function index (host functions first)
	OpDrop
	OpSelect

	OpLocalGet // Imm = local index
	OpLocalSet
	OpLocalTee

	OpI32Const // Imm = value

	OpI32Load   // Imm = static offset
	OpI32Store  // Imm = static offset
	OpI32Load8U // Imm = static offset
	OpI32Store8 // Imm = static offset

	OpI32Add
	OpI32Sub
	OpI32Mul
	OpI32DivS
	OpI32DivU
	OpI32RemU
	OpI32And
	OpI32Or
	OpI32Xor
	OpI32Shl
	OpI32ShrU
	OpI32ShrS

	OpI32Eqz
	OpI32Eq
	OpI32Ne
	OpI32LtS
	OpI32LtU
	OpI32GtS
	OpI32GtU
	OpI32LeU
	OpI32GeU

	OpMemorySize
	OpMemoryGrow
	numOps
)

// Instr is one instruction.
type Instr struct {
	Op  Op
	Imm int32
}

// PageSize is the linear-memory page size.
const PageSize = 65536

// Func is one module function.
type Func struct {
	Name      string
	NumParams int
	NumLocals int // additional locals beyond params
	Body      []Instr

	// branch targets resolved by Module.Prepare: for each instruction
	// index holding Br/BrIf, the destination ip; for Block/Loop/End the
	// matching structure.
	brTarget []int
}

// HostFunc is an imported function executing in the embedder.
type HostFunc struct {
	Name      string
	NumParams int
	// Fn receives the VM (for memory access) and the arguments, and
	// returns the single result.
	Fn func(vm *VM, args []int32) (int32, error)
}

// Module is a compiled unit: host imports, functions and an initial
// memory size.
type Module struct {
	Hosts    []HostFunc
	Funcs    []*Func
	MemPages int

	prepared bool
	byName   map[string]int
}

// FuncIndex returns the call index of a named module function (host
// imports occupy indices [0, len(Hosts))).
func (m *Module) FuncIndex(name string) (int, error) {
	if idx, ok := m.byName[name]; ok {
		return idx, nil
	}
	return 0, fmt.Errorf("wasm: no function %q", name)
}

// Prepare validates the module and resolves structured control flow to
// jump targets. It must be called once before instantiation.
func (m *Module) Prepare() error {
	m.byName = make(map[string]int, len(m.Funcs))
	for i, f := range m.Funcs {
		if f.Name != "" {
			if _, dup := m.byName[f.Name]; dup {
				return fmt.Errorf("wasm: duplicate function %q", f.Name)
			}
			m.byName[f.Name] = len(m.Hosts) + i
		}
		if err := m.prepareFunc(f); err != nil {
			return fmt.Errorf("wasm: func %q: %w", f.Name, err)
		}
	}
	m.prepared = true
	return nil
}

type ctrlFrame struct {
	isLoop bool
	start  int // instruction index of Block/Loop
	end    int // resolved index of matching End
}

func (m *Module) prepareFunc(f *Func) error {
	f.brTarget = make([]int, len(f.Body))
	var stack []ctrlFrame

	// First pass: match Block/Loop with End.
	ends := make([]int, len(f.Body)) // for each Block/Loop ip, the End ip
	var open []int
	for ip, ins := range f.Body {
		switch ins.Op {
		case OpBlock, OpLoop:
			open = append(open, ip)
		case OpEnd:
			if len(open) == 0 {
				return fmt.Errorf("unmatched end at %d", ip)
			}
			start := open[len(open)-1]
			open = open[:len(open)-1]
			ends[start] = ip
		}
		if ins.Op >= numOps {
			return fmt.Errorf("invalid opcode %d at %d", ins.Op, ip)
		}
	}
	if len(open) != 0 {
		return errors.New("unclosed block")
	}

	// Second pass: resolve branches against the control stack.
	for ip, ins := range f.Body {
		switch ins.Op {
		case OpBlock:
			stack = append(stack, ctrlFrame{isLoop: false, start: ip, end: ends[ip]})
		case OpLoop:
			stack = append(stack, ctrlFrame{isLoop: true, start: ip, end: ends[ip]})
		case OpEnd:
			if len(stack) > 0 {
				stack = stack[:len(stack)-1]
			}
		case OpBr, OpBrIf:
			depth := int(ins.Imm)
			if depth < 0 || depth >= len(stack) {
				return fmt.Errorf("branch depth %d at %d exceeds nesting %d", depth, ip, len(stack))
			}
			frame := stack[len(stack)-1-depth]
			if frame.isLoop {
				f.brTarget[ip] = frame.start + 1 // continue: after the Loop op
			} else {
				f.brTarget[ip] = frame.end + 1 // break: after the End
			}
		case OpCall:
			idx := int(ins.Imm)
			if idx < 0 || idx >= len(m.Hosts)+len(m.Funcs) {
				return fmt.Errorf("call to unknown function %d at %d", idx, ip)
			}
		case OpLocalGet, OpLocalSet, OpLocalTee:
			if int(ins.Imm) < 0 || int(ins.Imm) >= f.NumParams+f.NumLocals {
				return fmt.Errorf("local %d out of range at %d", ins.Imm, ip)
			}
		}
	}
	return nil
}
