package wasm

import (
	"errors"
	"fmt"
)

// ErrFuel is returned when execution exceeds the fuel budget.
var ErrFuel = errors.New("wasm: out of fuel")

// ErrTrap wraps guest-visible traps (unreachable, division by zero,
// out-of-bounds memory access).
var ErrTrap = errors.New("wasm: trap")

// VM is one module instance: linear memory plus execution state.
type VM struct {
	mod *Module
	mem []byte

	// Fuel limits total instructions when positive; Executed counts
	// instructions retired (the interpreter-overhead metric of the
	// Twine study).
	Fuel     int64
	Executed int64

	// HostCalls counts calls into the embedder (ocall analogue).
	HostCalls int64

	depth int
}

// maxCallDepth bounds recursion.
const maxCallDepth = 256

// NewVM instantiates a prepared module.
func NewVM(mod *Module) (*VM, error) {
	if !mod.prepared {
		return nil, errors.New("wasm: module not prepared")
	}
	pages := mod.MemPages
	if pages <= 0 {
		pages = 1
	}
	return &VM{mod: mod, mem: make([]byte, pages*PageSize)}, nil
}

// Memory exposes linear memory (host functions and embedders use it to
// marshal data).
func (vm *VM) Memory() []byte { return vm.mem }

// MemSizePages returns the current memory size in pages.
func (vm *VM) MemSizePages() int { return len(vm.mem) / PageSize }

// ReadU32 loads a little-endian u32 from linear memory.
func (vm *VM) ReadU32(addr uint32) (uint32, error) {
	if int(addr)+4 > len(vm.mem) {
		return 0, fmt.Errorf("%w: load at %#x", ErrTrap, addr)
	}
	return uint32(vm.mem[addr]) | uint32(vm.mem[addr+1])<<8 |
		uint32(vm.mem[addr+2])<<16 | uint32(vm.mem[addr+3])<<24, nil
}

// WriteU32 stores a little-endian u32 into linear memory.
func (vm *VM) WriteU32(addr uint32, v uint32) error {
	if int(addr)+4 > len(vm.mem) {
		return fmt.Errorf("%w: store at %#x", ErrTrap, addr)
	}
	vm.mem[addr] = byte(v)
	vm.mem[addr+1] = byte(v >> 8)
	vm.mem[addr+2] = byte(v >> 16)
	vm.mem[addr+3] = byte(v >> 24)
	return nil
}

// Call invokes a function by call index with the given arguments and
// returns its result (functions conceptually return one i32; functions
// that leave nothing on the stack return 0).
func (vm *VM) Call(index int, args ...int32) (int32, error) {
	if index < 0 || index >= len(vm.mod.Hosts)+len(vm.mod.Funcs) {
		return 0, fmt.Errorf("wasm: call index %d out of range", index)
	}
	if index < len(vm.mod.Hosts) {
		h := vm.mod.Hosts[index]
		if len(args) != h.NumParams {
			return 0, fmt.Errorf("wasm: host %q wants %d args, got %d", h.Name, h.NumParams, len(args))
		}
		vm.HostCalls++
		return h.Fn(vm, args)
	}
	f := vm.mod.Funcs[index-len(vm.mod.Hosts)]
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("wasm: func %q wants %d args, got %d", f.Name, f.NumParams, len(args))
	}
	return vm.exec(f, args)
}

// CallNamed invokes a named module function.
func (vm *VM) CallNamed(name string, args ...int32) (int32, error) {
	idx, err := vm.mod.FuncIndex(name)
	if err != nil {
		return 0, err
	}
	return vm.Call(idx, args...)
}

func (vm *VM) exec(f *Func, args []int32) (int32, error) {
	if vm.depth >= maxCallDepth {
		return 0, fmt.Errorf("%w: call depth exceeded", ErrTrap)
	}
	vm.depth++
	defer func() { vm.depth-- }()

	locals := make([]int32, f.NumParams+f.NumLocals)
	copy(locals, args)
	var stack []int32

	push := func(v int32) { stack = append(stack, v) }
	pop := func() int32 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v
	}

	ip := 0
	for ip < len(f.Body) {
		vm.Executed++
		if vm.Fuel > 0 && vm.Executed > vm.Fuel {
			return 0, ErrFuel
		}
		ins := f.Body[ip]
		switch ins.Op {
		case OpUnreachable:
			return 0, fmt.Errorf("%w: unreachable at %d", ErrTrap, ip)
		case OpNop, OpBlock, OpLoop, OpEnd:
			// Structure markers cost one fuel unit but do nothing.
		case OpBr:
			ip = f.brTarget[ip]
			continue
		case OpBrIf:
			if len(stack) < 1 {
				return 0, stackErr(f, ip)
			}
			if pop() != 0 {
				ip = f.brTarget[ip]
				continue
			}
		case OpReturn:
			if len(stack) == 0 {
				return 0, nil
			}
			return pop(), nil
		case OpCall:
			callee := int(ins.Imm)
			var nParams int
			if callee < len(vm.mod.Hosts) {
				nParams = vm.mod.Hosts[callee].NumParams
			} else {
				nParams = vm.mod.Funcs[callee-len(vm.mod.Hosts)].NumParams
			}
			if len(stack) < nParams {
				return 0, stackErr(f, ip)
			}
			callArgs := make([]int32, nParams)
			copy(callArgs, stack[len(stack)-nParams:])
			stack = stack[:len(stack)-nParams]
			r, err := vm.Call(callee, callArgs...)
			if err != nil {
				return 0, err
			}
			push(r)
		case OpDrop:
			if len(stack) < 1 {
				return 0, stackErr(f, ip)
			}
			pop()
		case OpSelect:
			if len(stack) < 3 {
				return 0, stackErr(f, ip)
			}
			cond := pop()
			b := pop()
			a := pop()
			if cond != 0 {
				push(a)
			} else {
				push(b)
			}
		case OpLocalGet:
			push(locals[ins.Imm])
		case OpLocalSet:
			if len(stack) < 1 {
				return 0, stackErr(f, ip)
			}
			locals[ins.Imm] = pop()
		case OpLocalTee:
			if len(stack) < 1 {
				return 0, stackErr(f, ip)
			}
			locals[ins.Imm] = stack[len(stack)-1]
		case OpI32Const:
			push(ins.Imm)
		case OpI32Load:
			if len(stack) < 1 {
				return 0, stackErr(f, ip)
			}
			addr := uint32(pop()) + uint32(ins.Imm)
			v, err := vm.ReadU32(addr)
			if err != nil {
				return 0, err
			}
			push(int32(v))
		case OpI32Store:
			if len(stack) < 2 {
				return 0, stackErr(f, ip)
			}
			v := pop()
			addr := uint32(pop()) + uint32(ins.Imm)
			if err := vm.WriteU32(addr, uint32(v)); err != nil {
				return 0, err
			}
		case OpI32Load8U:
			if len(stack) < 1 {
				return 0, stackErr(f, ip)
			}
			addr := uint32(pop()) + uint32(ins.Imm)
			if int(addr) >= len(vm.mem) {
				return 0, fmt.Errorf("%w: load8 at %#x", ErrTrap, addr)
			}
			push(int32(vm.mem[addr]))
		case OpI32Store8:
			if len(stack) < 2 {
				return 0, stackErr(f, ip)
			}
			v := pop()
			addr := uint32(pop()) + uint32(ins.Imm)
			if int(addr) >= len(vm.mem) {
				return 0, fmt.Errorf("%w: store8 at %#x", ErrTrap, addr)
			}
			vm.mem[addr] = byte(v)
		case OpMemorySize:
			push(int32(vm.MemSizePages()))
		case OpMemoryGrow:
			if len(stack) < 1 {
				return 0, stackErr(f, ip)
			}
			delta := pop()
			old := vm.MemSizePages()
			if delta < 0 || old+int(delta) > 1024 {
				push(-1)
			} else {
				vm.mem = append(vm.mem, make([]byte, int(delta)*PageSize)...)
				push(int32(old))
			}
		default:
			v, err := vm.binaryOrUnary(ins.Op, &stack, f, ip)
			if err != nil {
				return 0, err
			}
			push(v)
		}
		ip++
	}
	if len(stack) > 0 {
		return stack[len(stack)-1], nil
	}
	return 0, nil
}

func stackErr(f *Func, ip int) error {
	return fmt.Errorf("wasm: func %q: stack underflow at %d", f.Name, ip)
}

func (vm *VM) binaryOrUnary(op Op, stack *[]int32, f *Func, ip int) (int32, error) {
	s := *stack
	if op == OpI32Eqz {
		if len(s) < 1 {
			return 0, stackErr(f, ip)
		}
		v := s[len(s)-1]
		*stack = s[:len(s)-1]
		if v == 0 {
			return 1, nil
		}
		return 0, nil
	}
	if len(s) < 2 {
		return 0, stackErr(f, ip)
	}
	b := s[len(s)-1]
	a := s[len(s)-2]
	*stack = s[:len(s)-2]
	boolVal := func(c bool) int32 {
		if c {
			return 1
		}
		return 0
	}
	switch op {
	case OpI32Add:
		return a + b, nil
	case OpI32Sub:
		return a - b, nil
	case OpI32Mul:
		return a * b, nil
	case OpI32DivS:
		if b == 0 {
			return 0, fmt.Errorf("%w: division by zero", ErrTrap)
		}
		if a == -1<<31 && b == -1 {
			return 0, fmt.Errorf("%w: signed division overflow", ErrTrap)
		}
		return a / b, nil
	case OpI32DivU:
		if b == 0 {
			return 0, fmt.Errorf("%w: division by zero", ErrTrap)
		}
		return int32(uint32(a) / uint32(b)), nil
	case OpI32RemU:
		if b == 0 {
			return 0, fmt.Errorf("%w: remainder by zero", ErrTrap)
		}
		return int32(uint32(a) % uint32(b)), nil
	case OpI32And:
		return a & b, nil
	case OpI32Or:
		return a | b, nil
	case OpI32Xor:
		return a ^ b, nil
	case OpI32Shl:
		return a << (uint32(b) & 31), nil
	case OpI32ShrU:
		return int32(uint32(a) >> (uint32(b) & 31)), nil
	case OpI32ShrS:
		return a >> (uint32(b) & 31), nil
	case OpI32Eq:
		return boolVal(a == b), nil
	case OpI32Ne:
		return boolVal(a != b), nil
	case OpI32LtS:
		return boolVal(a < b), nil
	case OpI32LtU:
		return boolVal(uint32(a) < uint32(b)), nil
	case OpI32GtS:
		return boolVal(a > b), nil
	case OpI32GtU:
		return boolVal(uint32(a) > uint32(b)), nil
	case OpI32LeU:
		return boolVal(uint32(a) <= uint32(b)), nil
	case OpI32GeU:
		return boolVal(uint32(a) >= uint32(b)), nil
	}
	return 0, fmt.Errorf("wasm: unhandled opcode %d at %d", op, ip)
}

// Asm builds function bodies fluently.
type Asm struct {
	body []Instr
}

// I appends an instruction without immediate.
func (a *Asm) I(op Op) *Asm { a.body = append(a.body, Instr{Op: op}); return a }

// Imm appends an instruction with immediate.
func (a *Asm) Imm(op Op, imm int32) *Asm { a.body = append(a.body, Instr{Op: op, Imm: imm}); return a }

// Const pushes a constant.
func (a *Asm) Const(v int32) *Asm { return a.Imm(OpI32Const, v) }

// Get pushes a local.
func (a *Asm) Get(idx int) *Asm { return a.Imm(OpLocalGet, int32(idx)) }

// Set pops into a local.
func (a *Asm) Set(idx int) *Asm { return a.Imm(OpLocalSet, int32(idx)) }

// Tee stores into a local keeping the value on the stack.
func (a *Asm) Tee(idx int) *Asm { return a.Imm(OpLocalTee, int32(idx)) }

// Body returns the assembled instruction slice.
func (a *Asm) Body() []Instr { return a.body }
