// Package fabric simulates the communication infrastructure of the RECS
// platforms and the mobile networks of the automotive use case: links
// with bandwidth, base latency, jitter and loss; topologies with
// shortest-path routing; and run-time reconfiguration of link
// parameters ("the networking topology or protocol parameters can be
// adapted to cope with changing real-time or bandwidth requirements",
// §II-A).
package fabric

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// LinkProfile describes one link technology.
type LinkProfile struct {
	Name string
	// BandwidthMbps is the usable payload rate.
	BandwidthMbps float64
	// BaseLatencyMS is the one-way propagation plus protocol latency.
	BaseLatencyMS float64
	// JitterMS is the standard deviation of additional random latency.
	JitterMS float64
	// LossRate is the packet-loss probability per transfer, causing
	// retransmission delay.
	LossRate float64
}

// Standard profiles: the wired RECS fabric speeds and the mobile-network
// conditions the PAEB study sweeps.
var (
	Ethernet1G  = LinkProfile{Name: "1G Ethernet", BandwidthMbps: 940, BaseLatencyMS: 0.2, JitterMS: 0.02}
	Ethernet10G = LinkProfile{Name: "10G Ethernet", BandwidthMbps: 9400, BaseLatencyMS: 0.05, JitterMS: 0.01}
	HighSpeedLL = LinkProfile{Name: "high-speed low-latency", BandwidthMbps: 40000, BaseLatencyMS: 0.005, JitterMS: 0.001}
	WiFi5       = LinkProfile{Name: "WiFi 5", BandwidthMbps: 400, BaseLatencyMS: 3, JitterMS: 2, LossRate: 0.01}
	LTE         = LinkProfile{Name: "LTE", BandwidthMbps: 50, BaseLatencyMS: 40, JitterMS: 15, LossRate: 0.02}
	NR5G        = LinkProfile{Name: "5G NR", BandwidthMbps: 500, BaseLatencyMS: 10, JitterMS: 3, LossRate: 0.005}
	NR5GmmWave  = LinkProfile{Name: "5G mmWave", BandwidthMbps: 2000, BaseLatencyMS: 5, JitterMS: 2, LossRate: 0.01}
)

// MobileProfiles returns the cellular conditions swept by the PAEB
// offloading study, ordered from worst to best.
func MobileProfiles() []LinkProfile {
	return []LinkProfile{LTE, NR5G, NR5GmmWave}
}

// Validate checks profile sanity.
func (p LinkProfile) Validate() error {
	if p.BandwidthMbps <= 0 {
		return fmt.Errorf("fabric: %s bandwidth %v", p.Name, p.BandwidthMbps)
	}
	if p.BaseLatencyMS < 0 || p.JitterMS < 0 {
		return fmt.Errorf("fabric: %s negative latency", p.Name)
	}
	if p.LossRate < 0 || p.LossRate >= 1 {
		return fmt.Errorf("fabric: %s loss rate %v", p.Name, p.LossRate)
	}
	return nil
}

// TransferMS returns the deterministic expected transfer time for a
// payload: serialization + base latency + expected retransmission
// overhead.
func (p LinkProfile) TransferMS(bytes int64) float64 {
	ser := float64(bytes) * 8 / (p.BandwidthMbps * 1e6) * 1e3
	// Expected retransmissions: geometric series; each retransmission
	// costs one RTT (2x base latency).
	retrans := p.LossRate / (1 - p.LossRate) * 2 * p.BaseLatencyMS
	return ser + p.BaseLatencyMS + retrans
}

// SampleTransferMS draws one stochastic transfer time using rng,
// including jitter and sampled retransmissions.
func (p LinkProfile) SampleTransferMS(bytes int64, rng *rand.Rand) float64 {
	t := float64(bytes)*8/(p.BandwidthMbps*1e6)*1e3 + p.BaseLatencyMS
	t += math.Abs(rng.NormFloat64()) * p.JitterMS
	for rng.Float64() < p.LossRate {
		t += 2 * p.BaseLatencyMS
	}
	return t
}

// Network is a set of nodes joined by configurable bidirectional links.
type Network struct {
	nodes map[string]bool
	links map[[2]string]LinkProfile
}

// NewNetwork creates an empty topology.
func NewNetwork() *Network {
	return &Network{nodes: make(map[string]bool), links: make(map[[2]string]LinkProfile)}
}

// AddNode registers a node; adding twice is harmless.
func (n *Network) AddNode(name string) {
	n.nodes[name] = true
}

// Nodes returns all node names, sorted.
func (n *Network) Nodes() []string {
	out := make([]string, 0, len(n.nodes))
	for name := range n.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func linkKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Connect joins two existing nodes with a profile.
func (n *Network) Connect(a, b string, p LinkProfile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if !n.nodes[a] || !n.nodes[b] {
		return fmt.Errorf("fabric: connect %s-%s: unknown node", a, b)
	}
	if a == b {
		return fmt.Errorf("fabric: self-link on %s", a)
	}
	n.links[linkKey(a, b)] = p
	return nil
}

// Reconfigure swaps the profile of an existing link at run time.
func (n *Network) Reconfigure(a, b string, p LinkProfile) error {
	if _, ok := n.links[linkKey(a, b)]; !ok {
		return fmt.Errorf("fabric: no link %s-%s", a, b)
	}
	return n.Connect(a, b, p)
}

// Link returns the profile of a direct link.
func (n *Network) Link(a, b string) (LinkProfile, error) {
	p, ok := n.links[linkKey(a, b)]
	if !ok {
		return LinkProfile{}, fmt.Errorf("fabric: no link %s-%s", a, b)
	}
	return p, nil
}

// Route computes the minimum-expected-latency path for the payload size
// using Dijkstra over per-link TransferMS, returning the path and its
// total expected time.
func (n *Network) Route(from, to string, bytes int64) ([]string, float64, error) {
	if !n.nodes[from] || !n.nodes[to] {
		return nil, 0, fmt.Errorf("fabric: route %s-%s: unknown node", from, to)
	}
	const inf = math.MaxFloat64
	dist := make(map[string]float64, len(n.nodes))
	prev := make(map[string]string, len(n.nodes))
	visited := make(map[string]bool, len(n.nodes))
	for node := range n.nodes {
		dist[node] = inf
	}
	dist[from] = 0
	for {
		// Extract the unvisited node with the smallest distance.
		cur, best := "", inf
		for node, d := range dist {
			if !visited[node] && d < best {
				cur, best = node, d
			}
		}
		if cur == "" {
			break
		}
		if cur == to {
			break
		}
		visited[cur] = true
		for key, p := range n.links {
			var next string
			switch cur {
			case key[0]:
				next = key[1]
			case key[1]:
				next = key[0]
			default:
				continue
			}
			if visited[next] {
				continue
			}
			alt := dist[cur] + p.TransferMS(bytes)
			if alt < dist[next] {
				dist[next] = alt
				prev[next] = cur
			}
		}
	}
	if dist[to] == inf {
		return nil, 0, fmt.Errorf("fabric: no path %s-%s", from, to)
	}
	// Reconstruct.
	path := []string{to}
	for cur := to; cur != from; {
		cur = prev[cur]
		path = append(path, cur)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[to], nil
}

// TransferMS returns the expected end-to-end transfer time along the
// best route.
func (n *Network) TransferMS(from, to string, bytes int64) (float64, error) {
	_, t, err := n.Route(from, to, bytes)
	return t, err
}
