package fabric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfileValidate(t *testing.T) {
	for _, p := range []LinkProfile{Ethernet1G, Ethernet10G, HighSpeedLL, WiFi5, LTE, NR5G, NR5GmmWave} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := LinkProfile{Name: "bad", BandwidthMbps: 0}
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero bandwidth")
	}
	bad2 := LinkProfile{Name: "bad2", BandwidthMbps: 10, LossRate: 1}
	if err := bad2.Validate(); err == nil {
		t.Error("accepted loss rate 1")
	}
}

func TestTransferMSComponents(t *testing.T) {
	// 1 MB over 1G Ethernet: ~8.5 ms serialization + 0.2 ms latency.
	got := Ethernet1G.TransferMS(1 << 20)
	if got < 8 || got > 10 {
		t.Errorf("1MB over 1G = %.2f ms, want ~9", got)
	}
	// Zero-byte transfer costs base latency.
	if got := LTE.TransferMS(0); got < LTE.BaseLatencyMS {
		t.Errorf("0B over LTE = %v < base latency", got)
	}
}

func TestFasterLinkIsFaster(t *testing.T) {
	f := func(kb uint16) bool {
		bytes := int64(kb)*1024 + 1
		return Ethernet10G.TransferMS(bytes) < Ethernet1G.TransferMS(bytes) &&
			NR5G.TransferMS(bytes) < LTE.TransferMS(bytes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTransferMonotoneInSize(t *testing.T) {
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return LTE.TransferMS(x) <= LTE.TransferMS(y)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleTransferAtLeastDeterministicFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		s := NR5G.SampleTransferMS(100_000, rng)
		floor := 100_000 * 8 / (NR5G.BandwidthMbps * 1e6) * 1e3
		if s < floor+NR5G.BaseLatencyMS-1e-9 {
			t.Fatalf("sample %v below physical floor", s)
		}
	}
}

func TestNetworkRouting(t *testing.T) {
	n := NewNetwork()
	for _, name := range []string{"car", "basestation", "edge", "cloud"} {
		n.AddNode(name)
	}
	if err := n.Connect("car", "basestation", NR5G); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("basestation", "edge", Ethernet10G); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("edge", "cloud", Ethernet10G); err != nil {
		t.Fatal(err)
	}
	path, ms, err := n.Route("car", "cloud", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"car", "basestation", "edge", "cloud"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if ms <= 0 {
		t.Error("non-positive route time")
	}

	// Edge must be closer than cloud.
	edgeMS, _ := n.TransferMS("car", "edge", 100_000)
	if edgeMS >= ms {
		t.Errorf("edge (%v ms) not closer than cloud (%v ms)", edgeMS, ms)
	}
}

func TestRouteChoosesBetterPath(t *testing.T) {
	n := NewNetwork()
	for _, name := range []string{"a", "b", "c"} {
		n.AddNode(name)
	}
	// Direct slow link vs two-hop fast path.
	if err := n.Connect("a", "c", LTE); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", "b", Ethernet10G); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("b", "c", Ethernet10G); err != nil {
		t.Fatal(err)
	}
	path, _, err := n.Route("a", "c", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Errorf("router took slow direct path: %v", path)
	}
}

func TestReconfigure(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a")
	n.AddNode("b")
	if err := n.Connect("a", "b", LTE); err != nil {
		t.Fatal(err)
	}
	before, _ := n.TransferMS("a", "b", 1<<20)
	if err := n.Reconfigure("a", "b", NR5GmmWave); err != nil {
		t.Fatal(err)
	}
	after, _ := n.TransferMS("a", "b", 1<<20)
	if after >= before {
		t.Errorf("reconfiguration to mmWave did not help: %v -> %v", before, after)
	}
	if err := n.Reconfigure("a", "zz", NR5G); err == nil {
		t.Error("reconfigured nonexistent link")
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a")
	n.AddNode("b")
	n.AddNode("island")
	if err := n.Connect("a", "zz", LTE); err == nil {
		t.Error("connected unknown node")
	}
	if err := n.Connect("a", "a", LTE); err == nil {
		t.Error("accepted self-link")
	}
	if err := n.Connect("a", "b", LTE); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.Route("a", "island", 1); err == nil {
		t.Error("routed to unreachable node")
	}
	if _, _, err := n.Route("a", "zz", 1); err == nil {
		t.Error("routed to unknown node")
	}
	if _, err := n.Link("a", "island"); err == nil {
		t.Error("found nonexistent link")
	}
	if nodes := n.Nodes(); len(nodes) != 3 || nodes[0] != "a" {
		t.Errorf("Nodes() = %v", nodes)
	}
}
