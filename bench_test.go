package vedliot

import (
	"fmt"
	"testing"

	"vedliot/internal/bench"
	"vedliot/internal/cluster"
	"vedliot/internal/inference"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

// benchExperiment wraps one harness experiment as a testing.B benchmark:
// each iteration regenerates the full table/figure and fails the
// benchmark if any embedded shape check regresses.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if failed := rep.Failed(); len(failed) > 0 {
			b.Fatalf("%s: failed checks %v", id, failed)
		}
	}
}

// BenchmarkFig2FormFactors regenerates Fig. 2 (COM form factors).
func BenchmarkFig2FormFactors(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3AcceleratorSurvey regenerates Fig. 3 (accelerator survey).
func BenchmarkFig3AcceleratorSurvey(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkTOPSWCluster regenerates the ~1 TOPS/W clustering analysis.
func BenchmarkTOPSWCluster(b *testing.B) { benchExperiment(b, "topsw") }

// BenchmarkFig4YoloV4 regenerates Fig. 4 (YoloV4 sweep).
func BenchmarkFig4YoloV4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig4ResNet50MobileNetV3 regenerates the §II-C companion
// sweeps (ResNet50, MobileNetV3).
func BenchmarkFig4ResNet50MobileNetV3(b *testing.B) { benchExperiment(b, "fig4r") }

// BenchmarkURECSPower regenerates the uRECS power-envelope study.
func BenchmarkURECSPower(b *testing.B) { benchExperiment(b, "urecs") }

// BenchmarkReconfiguration regenerates the run-time reconfiguration
// study.
func BenchmarkReconfiguration(b *testing.B) { benchExperiment(b, "recon") }

// BenchmarkDeepCompression regenerates the §III compression pipeline.
func BenchmarkDeepCompression(b *testing.B) { benchExperiment(b, "comp49") }

// BenchmarkTheoryVsHardware regenerates the §III theory-vs-hardware
// speed-up comparison.
func BenchmarkTheoryVsHardware(b *testing.B) { benchExperiment(b, "theory") }

// BenchmarkKenningPipeline regenerates the Kenning measurement reports.
func BenchmarkKenningPipeline(b *testing.B) { benchExperiment(b, "kenning") }

// BenchmarkTwine regenerates the native/WASM/WASM+SGX database study.
func BenchmarkTwine(b *testing.B) { benchExperiment(b, "twine") }

// BenchmarkPMP regenerates the RISC-V PMP evaluation.
func BenchmarkPMP(b *testing.B) { benchExperiment(b, "pmp") }

// BenchmarkCFU regenerates the CFU acceleration study.
func BenchmarkCFU(b *testing.B) { benchExperiment(b, "cfu") }

// BenchmarkAttestation regenerates the remote-attestation flow.
func BenchmarkAttestation(b *testing.B) { benchExperiment(b, "attest") }

// BenchmarkSafetyMonitors regenerates the §IV-B monitor evaluation.
func BenchmarkSafetyMonitors(b *testing.B) { benchExperiment(b, "safety") }

// BenchmarkPAEB regenerates the automotive offload study.
func BenchmarkPAEB(b *testing.B) { benchExperiment(b, "paeb") }

// BenchmarkMotorCondition regenerates the motor-monitoring study.
func BenchmarkMotorCondition(b *testing.B) { benchExperiment(b, "motor") }

// BenchmarkArcDetection regenerates the arc-detection study.
func BenchmarkArcDetection(b *testing.B) { benchExperiment(b, "arc") }

// BenchmarkSmartMirror regenerates the smart-mirror pipeline study.
func BenchmarkSmartMirror(b *testing.B) { benchExperiment(b, "mirror") }

// BenchmarkAblationRoofline contrasts the roofline and peak-only device
// models.
func BenchmarkAblationRoofline(b *testing.B) { benchExperiment(b, "ablation-roofline") }

// BenchmarkAblationQuantGranularity contrasts per-tensor and
// per-channel quantization.
func BenchmarkAblationQuantGranularity(b *testing.B) { benchExperiment(b, "ablation-quant") }

// BenchmarkAblationPruning contrasts structured and unstructured
// pruning on hardware.
func BenchmarkAblationPruning(b *testing.B) { benchExperiment(b, "ablation-prune") }

// BenchmarkAblationEcallBatching contrasts enclave transition
// granularities.
func BenchmarkAblationEcallBatching(b *testing.B) { benchExperiment(b, "ablation-ecall") }

// BenchmarkClusterServing regenerates the fleet-serving study:
// throughput vs replica count under the synthetic open-loop trace plus
// the heterogeneous uRECS fleet on the real serving path.
func BenchmarkClusterServing(b *testing.B) { benchExperiment(b, "cluster") }

// BenchmarkServeFrontDoor regenerates the network front-door study:
// the million-client closed-loop simulation plus the framed-TCP load
// run comparing adaptive socket-boundary batching with batch-size-1
// passthrough.
func BenchmarkServeFrontDoor(b *testing.B) { benchExperiment(b, "serve") }

// BenchmarkClusterSubmit measures the real serving path end to end:
// async Submit/Wait through the scheduler, its admission queue and a
// heterogeneous fleet's batching servers.
func BenchmarkClusterSubmit(b *testing.B) {
	chassis := microserver.NewURECS()
	for slot, name := range []string{"SMARC ARM", "Jetson Xavier NX", "Coral SoM"} {
		m, err := microserver.FindModule(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := chassis.Insert(slot, m); err != nil {
			b.Fatal(err)
		}
	}
	sched := cluster.NewScheduler(chassis, cluster.Config{QueueDepth: 1024})
	defer sched.Close()
	g := nn.FaceDetectNet(32, nn.BuildOptions{Weights: true, Seed: 7})
	if _, err := sched.Deploy(g); err != nil {
		b.Fatal(err)
	}
	in := tensor.New(tensor.FP32, 1, 1, 32, 32)
	for i := range in.F32 {
		in.F32[i] = float32(i%17)/17 - 0.5
	}
	ins := map[string]*tensor.Tensor{g.Inputs[0]: in}
	b.ResetTimer()
	tickets := make([]*cluster.Ticket, 0, b.N)
	for i := 0; i < b.N; i++ {
		tk, err := sched.Submit(g.Name, ins)
		if err != nil {
			// Admission shed under benchmark pressure: wait out the
			// backlog and retry once.
			for _, t := range tickets {
				if _, werr := t.Wait(); werr != nil {
					b.Fatal(werr)
				}
			}
			tickets = tickets[:0]
			if tk, err = sched.Submit(g.Name, ins); err != nil {
				b.Fatal(err)
			}
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngine tracks the inference-runtime perf trajectory on a
// smart-mirror-class convolutional workload: the legacy tree-walking
// interpreter vs the compiled execution-plan engine at batch 1, 8 and
// 32, plus the fused RunBatch dispatch path. Compare matching batch
// sizes across sub-benchmarks, e.g.:
//
//	go test -bench BenchmarkEngine -run ^$ .
func BenchmarkEngine(b *testing.B) {
	g := nn.FaceDetectNet(64, nn.BuildOptions{Weights: true, Seed: 7})
	interp, err := inference.NewInterpreter(g)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := inference.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	input := func(batch, seed int) *tensor.Tensor {
		in := tensor.New(tensor.FP32, batch, 1, 64, 64)
		for i := range in.F32 {
			in.F32[i] = float32((i*3+seed)%17)/17 - 0.5
		}
		return in
	}
	for _, batch := range []int{1, 8, 32} {
		in := input(batch, 1)
		b.Run(fmt.Sprintf("interpreter/batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := interp.RunSingle(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("engine/batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.RunSingle(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Fused dispatch of 8 independent single-sample requests.
	reqs := make([]map[string]*tensor.Tensor, 8)
	for i := range reqs {
		reqs[i] = map[string]*tensor.Tensor{g.Inputs[0]: input(1, i)}
	}
	b.Run("engine/runbatch8x1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.RunBatch(reqs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkQuantized tracks the native INT8 engine against the FP32
// engine on the MobileNet-style workload at batch 1 and 8 (single
// core), the headline comparison of the quantized bench experiment.
func BenchmarkQuantized(b *testing.B) {
	g := nn.MobileNetEdge(64, 10, nn.BuildOptions{Weights: true, Seed: 3})
	if _, err := optimize.Pipeline(g, optimize.StandardPasses(), 0); err != nil {
		b.Fatal(err)
	}
	input := func(batch, seed int) map[string]*tensor.Tensor {
		in, err := nn.SyntheticInput(g, batch, seed)
		if err != nil {
			b.Fatal(err)
		}
		return in
	}
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		b.Fatal(err)
	}
	fp, err := inference.Compile(g, inference.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	q, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{1, 8} {
		in := input(batch, 9)
		b.Run(fmt.Sprintf("fp32/batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fp.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("int8/batch%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := q.Run(in); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineCompile measures one-time compilation cost (kernel
// binding, weight dequantization and memory planning).
func BenchmarkEngineCompile(b *testing.B) {
	g := nn.FaceDetectNet(64, nn.BuildOptions{Weights: true, Seed: 7})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inference.Compile(g); err != nil {
			b.Fatal(err)
		}
	}
}
