// Package vedliot is a from-scratch Go reproduction of "VEDLIoT: Very
// Efficient Deep Learning in IoT" (DATE 2022): the RECS cognitive IoT
// hardware platform, the DL accelerator evaluation methodology, the
// ONNX-centric optimizing toolchain, the trusted-execution and
// attestation stack, the DL safety monitors, the AIoT requirements
// framework and the three use-case domains — each backed by simulators
// where the paper used physical hardware.
//
// See DESIGN.md for the system inventory, the Backend/Engine execution
// architecture and the per-experiment index, and cmd/vedliot-bench for
// regenerating every table and figure.
package vedliot
