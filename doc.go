// Package vedliot is a from-scratch Go reproduction of "VEDLIoT: Very
// Efficient Deep Learning in IoT" (DATE 2022): the RECS cognitive IoT
// hardware platform, the DL accelerator evaluation methodology, the
// ONNX-centric optimizing toolchain, the trusted-execution and
// attestation stack, the DL safety monitors, the AIoT requirements
// framework and the three use-case domains — each backed by simulators
// where the paper used physical hardware.
//
// The execution stack offers two compiled runtimes behind one
// Backend/Executable interface pair: the FP32 execution-plan engine and
// a native INT8 engine (integer kernels, fixed-point requantization,
// lookup-table epilogues) driven by a calibrated nn.QuantSchema — the
// runtime the INT8-only edge accelerators of the paper's Fig. 4
// evaluation are modeled on. Both compilers drive one shared lowering
// pipeline (internal/inference/ir): a typed IR plus an ordered pass
// manager — shape inference, constant folding, identity/dead/CSE
// elimination, epilogue fusion, precision assignment — with
// deterministic pass-by-pass textual dumps (kenning -dump-ir,
// vedliot-bench -dump-ir) pinned by golden tests.
//
// Both engines lower channel-heavy convolutions and batched dense
// layers onto packed, register-blocked GEMM micro-kernels
// (internal/tensor): weights are packed once at bind time, activation
// tiles are packed fused with the im2col gather, and the widest
// micro-kernel variant the host supports — portable Go, SSE2, or AVX2
// (6x16 FP32 / 4x16 INT8 PMADDWD tiles) — is selected at runtime by
// internal/tensor/cpu (VEDLIOT_CPU narrows, noasm/purego build tags
// force the portable path). All variants are exact: FP32 results are
// bitwise identical to the reference interpreter, INT8 accumulation is
// associative int32.
//
// Deployment is artifact-driven: internal/artifact packages a model
// (graph, weights, calibrated schema, provenance) into a versioned,
// CRC-checked, content-digested .vedz file with zero-copy weight
// loading, and internal/cluster deploys fleets from a model registry
// through a fleet-wide compiled-plan cache (inference.PlanCache) — a
// replica cold-start is load + bind, never calibrate + lower.
// cmd/vedliot-pack packs, inspects and verifies artifacts;
// cmd/vedliot-serve serves them across heterogeneous chassis.
//
// See README.md for the map of the repository and DESIGN.md for the
// system inventory, the Backend/Engine execution architecture, the
// lowering IR and pass manager, the quantized-execution path, the
// artifact wire format and plan-cache invariants, and the
// per-experiment index; cmd/vedliot-bench regenerates every table and
// figure, and cmd/bench-gate enforces the committed perf baseline in
// CI.
package vedliot
