// Command bench-gate is the CI perf-regression gate: it compares the
// BENCH_<id>.json artifacts of a `vedliot-bench -json` run against the
// committed baseline (bench_baseline.json) and exits non-zero when a
// gated metric regressed beyond tolerance, an artifact or metric is
// missing, or an experiment's own shape checks failed.
//
// Usage:
//
//	vedliot-bench -run engine -run-all-gated... -json -outdir out/
//	bench-gate -baseline bench_baseline.json -dir out/
package main

import (
	"flag"
	"fmt"
	"os"

	"vedliot/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed baseline file")
	dir := flag.String("dir", ".", "directory holding BENCH_<id>.json artifacts")
	flag.Parse()

	baseline, err := bench.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	artifacts, err := bench.LoadArtifacts(*dir)
	if err != nil {
		fatal(err)
	}
	results := baseline.Check(artifacts)
	if len(results) == 0 {
		fatal(fmt.Errorf("baseline %s gates no metrics", *baselinePath))
	}
	failures := 0
	for _, r := range results {
		fmt.Println(r)
		if !r.Ok() {
			failures++
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d/%d gated metrics failed", failures, len(results)))
	}
	fmt.Printf("bench-gate: %d gated metrics within tolerance\n", len(results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-gate:", err)
	os.Exit(1)
}
