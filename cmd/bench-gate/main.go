// Command bench-gate is the CI perf-regression gate: it compares the
// BENCH_<id>.json artifacts of a `vedliot-bench -json` run against the
// committed baseline (bench_baseline.json) and exits non-zero when a
// gated metric regressed beyond tolerance, an artifact or metric is
// missing, or an experiment's own shape checks failed.
//
// Usage:
//
//	vedliot-bench -run engine -run-all-gated... -json -outdir out/
//	bench-gate -baseline bench_baseline.json -dir out/
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"vedliot/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "bench_baseline.json", "committed baseline file")
	dir := flag.String("dir", ".", "directory holding BENCH_<id>.json artifacts")
	flag.Parse()

	baseline, err := bench.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	artifacts, err := bench.LoadArtifacts(*dir)
	if err != nil {
		fatal(err)
	}
	// Report the kernel tier that produced each artifact, so a gate
	// verdict is always interpretable: a "regression" measured by a
	// narrower kernel tier than the baseline's is a machine difference,
	// not a code change.
	kernels := map[string][]string{}
	for id, a := range artifacts {
		if a.Kernel != "" {
			kernels[a.Kernel] = append(kernels[a.Kernel], id)
		}
	}
	kernelLines := make([]string, 0, len(kernels))
	for k, ids := range kernels {
		sort.Strings(ids)
		kernelLines = append(kernelLines, fmt.Sprintf("bench-gate: artifacts [%s] produced with %s", strings.Join(ids, " "), k))
	}
	sort.Strings(kernelLines)
	for _, l := range kernelLines {
		fmt.Println(l)
	}
	results := baseline.Check(artifacts)
	if len(results) == 0 {
		fatal(fmt.Errorf("baseline %s gates no metrics", *baselinePath))
	}
	failures := 0
	for _, r := range results {
		fmt.Println(r)
		if !r.Ok() {
			failures++
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("%d/%d gated metrics failed", failures, len(results)))
	}
	fmt.Printf("bench-gate: %d gated metrics within tolerance\n", len(results))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench-gate:", err)
	os.Exit(1)
}
