// Command vedliot-bench regenerates the paper's tables and figures from
// the reproduction's models and simulators.
//
// Usage:
//
//	vedliot-bench -list           # enumerate experiments
//	vedliot-bench -run fig4       # run one experiment
//	vedliot-bench -all            # run everything
package main

import (
	"flag"
	"fmt"
	"os"

	"vedliot/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "", "run one experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	switch {
	case *list:
		fmt.Printf("%-20s %s\n", "id", "paper artifact")
		for _, e := range bench.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Paper)
		}
	case *run != "":
		e, err := bench.Find(*run)
		if err != nil {
			fatal(err)
		}
		if err := execute(e); err != nil {
			fatal(err)
		}
	case *all:
		failures := 0
		for _, e := range bench.Registry() {
			if err := execute(e); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				failures++
			}
			fmt.Println()
		}
		if failures > 0 {
			fatal(fmt.Errorf("%d experiments failed", failures))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func execute(e bench.Experiment) error {
	rep, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if failed := rep.Failed(); len(failed) > 0 {
		return fmt.Errorf("failed shape checks: %v", failed)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedliot-bench:", err)
	os.Exit(1)
}
