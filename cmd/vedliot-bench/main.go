// Command vedliot-bench regenerates the paper's tables and figures from
// the reproduction's models and simulators.
//
// Usage:
//
//	vedliot-bench -list           # enumerate experiments
//	vedliot-bench -run fig4       # run one experiment
//	vedliot-bench -all            # run everything
//	vedliot-bench -run engine -json   # also write BENCH_engine.json
//
// With -json each executed experiment additionally writes a
// machine-readable perf artifact BENCH_<id>.json (checks + metrics)
// into -outdir, seeding the bench trajectory tracked across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vedliot/internal/bench"
	"vedliot/internal/inference"
	"vedliot/internal/inference/ir"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor/cpu"
)

func main() {
	list := flag.Bool("list", false, "list experiments")
	run := flag.String("run", "", "run one experiment by id")
	all := flag.Bool("all", false, "run every experiment")
	jsonOut := flag.Bool("json", false, "write BENCH_<id>.json perf artifacts")
	outdir := flag.String("outdir", ".", "directory for -json artifacts")
	dumpIR := flag.Bool("dump-ir", false, "print the deterministic pass-by-pass lowering IR of the toolchain study models (FP32 and INT8) and exit")
	flag.Parse()

	switch {
	case *dumpIR:
		if err := dumpToolchainIR(); err != nil {
			fatal(err)
		}
	case *list:
		fmt.Printf("%-20s %s\n", "id", "paper artifact")
		for _, e := range bench.Registry() {
			fmt.Printf("%-20s %s\n", e.ID, e.Paper)
		}
	case *run != "":
		e, err := bench.Find(*run)
		if err != nil {
			fatal(err)
		}
		fmt.Println("host:", cpu.Summary())
		if err := execute(e, *jsonOut, *outdir); err != nil {
			fatal(err)
		}
	case *all:
		fmt.Println("host:", cpu.Summary())
		failures := 0
		for _, e := range bench.Registry() {
			if err := execute(e, *jsonOut, *outdir); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				failures++
			}
			fmt.Println()
		}
		if failures > 0 {
			fatal(fmt.Errorf("%d experiments failed", failures))
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func execute(e bench.Experiment, jsonOut bool, outdir string) error {
	rep, err := e.Run()
	if err != nil {
		return err
	}
	fmt.Print(rep)
	if jsonOut {
		// The artifact is written even when checks fail: a failing run
		// is still a data point in the trajectory.
		if err := writeArtifact(outdir, e.ID, rep); err != nil {
			return err
		}
	}
	if failed := rep.Failed(); len(failed) > 0 {
		return fmt.Errorf("failed shape checks: %v", failed)
	}
	return nil
}

func writeArtifact(dir, id string, rep *bench.Report) error {
	data, err := json.MarshalIndent(rep.Artifact(id), "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+id+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// dumpToolchainIR prints the pass-by-pass lowering trace of the two
// toolchain study models: the engine study's face detector through the
// FP32 pipeline and the quantized study's MobileNet-style classifier
// through the INT8 pipeline. The output is deterministic apart from
// pass timings — the structural dumps are exactly what the golden IR
// tests pin.
func dumpToolchainIR() error {
	dump := func(g *nn.Graph, schema *nn.QuantSchema) error {
		_, records, err := inference.Lower(g, schema, true)
		if err != nil {
			return err
		}
		fmt.Print(ir.FormatRecords(records, true))
		return nil
	}
	fmt.Println("--- engine study model (FP32 pipeline) ---")
	if err := dump(nn.FaceDetectNet(64, nn.BuildOptions{Weights: true, Seed: 91}), nil); err != nil {
		return err
	}
	g := nn.MobileNetEdge(64, 10, nn.BuildOptions{Weights: true, Seed: 3})
	if _, err := optimize.Pipeline(g, optimize.StandardPasses(), 0); err != nil {
		return err
	}
	samples, err := nn.SyntheticCalibration(g, 3)
	if err != nil {
		return err
	}
	schema, err := optimize.Calibrate(g, samples)
	if err != nil {
		return err
	}
	fmt.Println("--- quantized study model (INT8 pipeline) ---")
	return dump(g, schema)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedliot-bench:", err)
	os.Exit(1)
}
