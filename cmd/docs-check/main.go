// Command docs-check is the documentation gate of the CI docs job: it
// fails (exit 1) when a package lacks a package comment or when any
// exported top-level identifier — function, method, type, or a
// const/var declaration outside a documented block — has no doc
// comment. `go doc` is then guaranteed useful for every public entry
// point of the checked packages.
//
// Usage:
//
//	docs-check ./internal/artifact ./internal/cluster ...
//
// Each argument is a package directory (not a pattern); test files are
// ignored.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: docs-check <package dir> [dir ...]")
		os.Exit(2)
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "docs-check:", err)
			os.Exit(2)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docs-check: %d exported identifier(s) missing doc comments\n", len(problems))
		os.Exit(1)
	}
	fmt.Printf("docs-check: %d package(s) fully documented\n", len(os.Args[1:]))
}

// checkDir parses one package directory and reports undocumented
// exported declarations as "path: identifier" strings.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		// Deterministic file order.
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			problems = append(problems, checkFile(fset, pkg.Files[name])...)
		}
	}
	return problems, nil
}

// checkFile reports undocumented exported top-level declarations of
// one file.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: %s has no doc comment", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				what := "func " + d.Name.Name
				if d.Recv != nil && len(d.Recv.List) > 0 {
					// Only flag methods on exported receivers; an
					// unexported type's methods are not in go doc.
					if !exportedRecv(d.Recv.List[0].Type) {
						continue
					}
					what = "method " + d.Name.Name
				}
				report(d.Pos(), what)
			}
		case *ast.GenDecl:
			switch d.Tok {
			case token.TYPE:
				for _, spec := range d.Specs {
					ts := spec.(*ast.TypeSpec)
					if ts.Name.IsExported() && d.Doc == nil && ts.Doc == nil && ts.Comment == nil {
						report(ts.Pos(), "type "+ts.Name.Name)
					}
				}
			case token.CONST, token.VAR:
				// A documented block covers its specs; an undocumented
				// block needs per-spec docs for exported names.
				if d.Doc != nil {
					continue
				}
				for _, spec := range d.Specs {
					vs := spec.(*ast.ValueSpec)
					if vs.Doc != nil || vs.Comment != nil {
						continue
					}
					for _, n := range vs.Names {
						if n.IsExported() {
							report(n.Pos(), fmt.Sprintf("%s %s", d.Tok, n.Name))
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedRecv reports whether a method receiver type is exported.
func exportedRecv(expr ast.Expr) bool {
	switch t := expr.(type) {
	case *ast.StarExpr:
		return exportedRecv(t.X)
	case *ast.Ident:
		return t.IsExported()
	case *ast.IndexExpr: // generic receiver
		return exportedRecv(t.X)
	case *ast.IndexListExpr:
		return exportedRecv(t.X)
	}
	return false
}
