// Command recs-sim assembles a RECS chassis, inserts microserver
// modules and prints the power/monitoring report — the platform-level
// view of §II-A.
//
// Usage:
//
//	recs-sim -chassis urecs -modules "Jetson Xavier NX,Xilinx Kria K26" -util 0.7
//	recs-sim -chassis trecs -modules "COM-HPC Server x86"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vedliot/internal/microserver"
)

func main() {
	chassisName := flag.String("chassis", "urecs", "chassis: urecs, trecs, recsbox")
	modules := flag.String("modules", "Jetson Xavier NX", "comma-separated module names")
	util := flag.Float64("util", 0.5, "uniform module utilization 0..1")
	flag.Parse()

	var chassis *microserver.Chassis
	switch *chassisName {
	case "urecs":
		chassis = microserver.NewURECS()
	case "trecs":
		chassis = microserver.NewTRECS(3)
	case "recsbox":
		chassis = microserver.NewRECSBox(4)
	default:
		fatal(fmt.Errorf("unknown chassis %q", *chassisName))
	}
	fmt.Printf("%s (%s tier), %d slots, baseboard %.1f W, fabric %v Gbps\n",
		chassis.Name, chassis.Tier, len(chassis.Slots), chassis.BaseboardW, chassis.FabricGbps)

	utilMap := map[int]float64{}
	slot := 0
	for _, name := range strings.Split(*modules, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := microserver.FindModule(name)
		if err != nil {
			fatal(err)
		}
		if err := chassis.Insert(slot, m); err != nil {
			fatal(err)
		}
		fmt.Printf("slot %d <- %s (%v, %s, %.1f-%.1f W)\n", slot, m.Name, m.FormFactor, m.Arch, m.IdleW, m.MaxW)
		utilMap[slot] = *util
		slot++
	}

	snap := chassis.Snapshot(utilMap)
	fmt.Printf("\nmonitoring snapshot at %.0f%% utilization:\n", *util*100)
	fmt.Printf("%-6s %-24s %-8s %8s %8s\n", "slot", "module", "powered", "power W", "temp C")
	for _, r := range snap.PerSlot {
		name := r.Module
		if name == "" {
			name = "(empty)"
		}
		fmt.Printf("%-6d %-24s %-8v %8.1f %8.1f\n", r.Slot, name, r.Powered, r.PowerW, r.TempC)
	}
	fmt.Printf("total: %.1f W (worst case %.1f W)\n", snap.TotalW, chassis.MaxPowerW())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "recs-sim:", err)
	os.Exit(1)
}
