// Command vedliot-pack packages, inspects and verifies .vedz
// deployment artifacts — the toolchain's "optimize once, deploy
// everywhere" unit (internal/artifact).
//
// Usage:
//
//	vedliot-pack pack -model mirror-face -o mirror-face.vedz
//	vedliot-pack pack -model motor -int8 -quantize -o motor.vedz
//	vedliot-pack inspect mirror-face.vedz
//	vedliot-pack verify mirror-face.vedz
//	vedliot-pack list
//	vedliot-pack keygen -o keys/
//	vedliot-pack sign -keys keys/ -log log.json -o m.bundle.json m.vedz
//	vedliot-pack witness -keys keys/ -log log.json -state w.json -bundle m.bundle.json
//	vedliot-pack verify -policy keys/ -bundle m.bundle.json m.vedz
//
// pack builds a zoo model, optionally runs the optimization pipeline
// (INT8 weight quantization, activation calibration, pruning) and
// writes the artifact; inspect prints the section table, content
// digest, provenance and quantization-schema summary; verify re-checks
// every integrity property (CRCs, canonical byte form, graph validity,
// schema coverage) and exits non-zero on any failure — the command CI
// runs over the committed golden artifact.
//
// The release subcommands implement the signed, witnessed release
// channel (internal/release): keygen provisions signer, log and
// witness key pairs; sign wraps an artifact in a signed envelope,
// appends it to the transparency log and emits the release bundle;
// witness checks the log's append-only growth against its remembered
// tree head and countersigns the bundle's checkpoint; verify -policy
// enforces the full deploy gate — signature, log inclusion and witness
// quorum — and exits non-zero when any of them fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vedliot/internal/artifact"
	"vedliot/internal/kenning"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/release"
	"vedliot/internal/zoo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "pack":
		pack(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "list":
		list()
	case "keygen":
		keygen(os.Args[2:])
	case "sign":
		sign(os.Args[2:])
	case "witness":
		witness(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vedliot-pack <pack|inspect|verify|list|keygen|sign|witness> [args]
  pack    -model <zoo entry> -o <file.vedz> [-quantize] [-prune 0.x] [-int8] [-calib n]
  inspect <file.vedz>
  verify  [-policy <keydir> -bundle <bundle.json> [-min-witnesses n]] <file.vedz>
  list    (print zoo entries)
  keygen  -o <keydir>  (provision signer/log/witness key pairs)
  sign    -keys <keydir> -log <log.json> -o <bundle.json> [-origin name] [-skip-log] <file.vedz>
  witness -keys <keydir> -log <log.json> -state <state.json> -bundle <bundle.json> [-name id]`)
	os.Exit(2)
}

// pack builds the model, runs the selected optimization steps and
// writes the artifact, printing its digest and section sizes.
func pack(args []string) {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	model := fs.String("model", "", "zoo entry to package (see `vedliot-pack list`)")
	out := fs.String("o", "", "output .vedz path (default <model>.vedz)")
	quantize := fs.Bool("quantize", false, "post-training INT8 weight quantization (per-channel)")
	prune := fs.Float64("prune", 0, "magnitude-pruning sparsity (0..1)")
	int8Schema := fs.Bool("int8", false, "calibrate activations and embed the INT8 schema (native quantized serving)")
	calib := fs.Int("calib", 4, "calibration batches for -int8")
	fs.Parse(args)
	if *model == "" {
		fatal(fmt.Errorf("pack: -model is required"))
	}
	entry, err := zoo.Find(*model)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *model + ".vedz"
	}

	g := entry.Build()
	cfg := kenning.PipelineConfig{Prune: *prune}
	if *quantize {
		cfg.Quantize = true
		cfg.Granularity = optimize.PerChannel
	}
	if *int8Schema {
		samples, err := nn.SyntheticCalibration(g, *calib)
		if err != nil {
			fatal(err)
		}
		cfg.CalibrationSamples = samples
	}
	rep, err := kenning.RunPipeline(g, cfg)
	if err != nil {
		fatal(err)
	}
	prov := artifact.Provenance{
		Tool:           "vedliot-pack",
		Passes:         rep.AppliedPasses,
		PrunedSparsity: *prune,
	}
	if rep.QuantReport != nil {
		prov.Quantized = rep.QuantReport.Granularity.String()
	}
	m := &artifact.Model{Graph: g, Schema: rep.Schema, Prov: prov}
	if err := artifact.Save(path, m); err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	info, err := artifact.Inspect(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("packed %s -> %s (%d bytes)\n", g.Name, path, len(data))
	fmt.Print(info)
}

// inspect prints the artifact summary.
func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	info, err := artifact.Inspect(data)
	if err != nil {
		fatal(err)
	}
	fmt.Print(info)
}

// verify re-checks every integrity property and exits non-zero on any
// failure. With -policy it additionally enforces the release gate:
// the bundle must carry a valid signer envelope for these exact bytes,
// a transparency-log inclusion proof, and a checkpoint countersigned
// by the witness quorum.
func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	policyDir := fs.String("policy", "", "key directory with signer.pub/log.pub/witness.pub (enables the release gate)")
	bundlePath := fs.String("bundle", "", "release bundle to verify against (required with -policy)")
	minWitnesses := fs.Int("min-witnesses", 1, "witness countersignatures required by -policy")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	m, err := artifact.Verify(data)
	if err != nil {
		fatal(err)
	}
	if *policyDir != "" {
		if *bundlePath == "" {
			fatal(fmt.Errorf("verify: -policy requires -bundle"))
		}
		policy, err := release.LoadPolicyDir(*policyDir, *minWitnesses)
		if err != nil {
			fatal(err)
		}
		b, err := release.LoadBundle(*bundlePath)
		if err != nil {
			fatal(err)
		}
		if err := policy.VerifyArtifact(data, b); err != nil {
			fatal(err)
		}
		cp := b.Checkpoint
		fmt.Printf("OK %s: %s (%d bytes, model %s, %d nodes)\n",
			path, m.Digest, len(data), m.Graph.Name, len(m.Graph.Nodes))
		fmt.Printf("release: signer %s, log %s leaf %d of %d, %d witness countersignature(s)\n",
			b.Envelope.SignerID, cp.Origin, b.LeafIndex, cp.Size, len(cp.Witness))
		return
	}
	fmt.Printf("OK %s: %s (%d bytes, model %s, %d nodes)\n",
		path, m.Digest, len(data), m.Graph.Name, len(m.Graph.Nodes))
}

// keygen provisions the three release key pairs (signer, log, witness)
// into a directory: hex seed in <name>.key (0600), hex public half in
// <name>.pub.
func keygen(args []string) {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	out := fs.String("o", "", "output key directory")
	fs.Parse(args)
	if *out == "" || fs.NArg() != 0 {
		usage()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if err := release.GenerateKeyDir(*out); err != nil {
		fatal(err)
	}
	fmt.Printf("generated signer/log/witness key pairs in %s\n", *out)
}

// sign wraps an artifact in a signed release envelope, appends the
// envelope to the transparency log (creating the log file on first
// use) and writes the release bundle: envelope + inclusion proof +
// freshly signed checkpoint, ready for witness countersignatures.
// -skip-log produces a signed-but-unlogged bundle — CI uses it to
// prove the policy gate refuses exactly that.
func sign(args []string) {
	fs := flag.NewFlagSet("sign", flag.ExitOnError)
	keys := fs.String("keys", "", "key directory from keygen")
	logPath := fs.String("log", "", "transparency log file (created if missing)")
	out := fs.String("o", "", "output bundle path (default <file>.bundle.json)")
	origin := fs.String("origin", "vedliot/releases", "log origin name")
	skipLog := fs.Bool("skip-log", false, "sign without logging (negative-test bundles)")
	fs.Parse(args)
	if *keys == "" || fs.NArg() != 1 {
		usage()
	}
	path := fs.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	// Never sign bytes that fail the artifact's own integrity checks.
	m, err := artifact.Verify(data)
	if err != nil {
		fatal(fmt.Errorf("sign: refusing to sign a broken artifact: %w", err))
	}
	signerKey, err := release.LoadPrivateKey(filepath.Join(*keys, release.SignerKeyName+".key"))
	if err != nil {
		fatal(err)
	}
	signer, err := release.NewSignerFromKey(signerKey)
	if err != nil {
		fatal(err)
	}
	env := signer.SignBytes(data, m.Graph.Name, "vedliot-pack")

	bundlePath := *out
	if bundlePath == "" {
		bundlePath = path + ".bundle.json"
	}
	if *skipLog {
		if err := release.SaveBundle(bundlePath, &release.Bundle{Envelope: env}); err != nil {
			fatal(err)
		}
		fmt.Printf("signed %s (%s) UNLOGGED -> %s\n", path, m.Digest, bundlePath)
		return
	}
	if *logPath == "" {
		fatal(fmt.Errorf("sign: -log is required (or pass -skip-log)"))
	}
	logKey, err := release.LoadPrivateKey(filepath.Join(*keys, release.LogKeyName+".key"))
	if err != nil {
		fatal(err)
	}
	log, err := release.OpenLogFile(*logPath, *origin, logKey)
	if err != nil {
		fatal(err)
	}
	idx := log.Append(env.Encode())
	cp, err := log.Checkpoint()
	if err != nil {
		fatal(err)
	}
	proof, err := log.Inclusion(idx, cp.Size)
	if err != nil {
		fatal(err)
	}
	if err := release.SaveLogFile(*logPath, log); err != nil {
		fatal(err)
	}
	b := &release.Bundle{Envelope: env, LeafIndex: idx, InclusionProof: proof, Checkpoint: &cp}
	if err := release.SaveBundle(bundlePath, b); err != nil {
		fatal(err)
	}
	fmt.Printf("signed %s (%s) -> %s, log %s leaf %d of %d\n",
		path, m.Digest, bundlePath, cp.Origin, idx, cp.Size)
}

// witness verifies the bundle checkpoint's append-only consistency
// against the witness's remembered tree head (trust-on-first-use for a
// log it has never seen), countersigns it, and persists both the
// updated bundle and the advanced witness state. A shrinking, forked
// or foreign-keyed checkpoint is refused and the state stays put.
func witness(args []string) {
	fs := flag.NewFlagSet("witness", flag.ExitOnError)
	keys := fs.String("keys", "", "key directory from keygen")
	logPath := fs.String("log", "", "transparency log file (consistency-proof source)")
	statePath := fs.String("state", "", "witness state file (remembered tree heads)")
	bundlePath := fs.String("bundle", "", "release bundle to countersign")
	name := fs.String("name", "w0", "witness identity")
	fs.Parse(args)
	if *keys == "" || *logPath == "" || *statePath == "" || *bundlePath == "" || fs.NArg() != 0 {
		usage()
	}
	witnessKey, err := release.LoadPrivateKey(filepath.Join(*keys, release.WitnessKeyName+".key"))
	if err != nil {
		fatal(err)
	}
	logPub, err := release.LoadPublicKey(filepath.Join(*keys, release.LogKeyName+".pub"))
	if err != nil {
		fatal(err)
	}
	w, err := release.NewWitness(*name, witnessKey, logPub)
	if err != nil {
		fatal(err)
	}
	if err := release.LoadWitnessState(*statePath, w); err != nil {
		fatal(err)
	}
	b, err := release.LoadBundle(*bundlePath)
	if err != nil {
		fatal(err)
	}
	if b.Checkpoint == nil {
		fatal(fmt.Errorf("witness: bundle has no checkpoint (signed but never logged)"))
	}
	log, err := release.OpenLogFile(*logPath, b.Checkpoint.Origin, nil)
	if err != nil {
		fatal(err)
	}
	var proof []release.Hash
	if th, ok := w.Seen(b.Checkpoint.Origin); ok && th.Size > 0 && th.Size < b.Checkpoint.Size {
		proof, err = log.Consistency(th.Size, b.Checkpoint.Size)
		if err != nil {
			fatal(err)
		}
	}
	ws, err := w.Observe(*b.Checkpoint, proof)
	if err != nil {
		fatal(err)
	}
	b.Checkpoint.Witness = append(b.Checkpoint.Witness, ws)
	if err := release.SaveBundle(*bundlePath, b); err != nil {
		fatal(err)
	}
	if err := release.SaveWitnessState(*statePath, w); err != nil {
		fatal(err)
	}
	fmt.Printf("witness %s countersigned %s at size %d (%d countersignature(s) total)\n",
		*name, b.Checkpoint.Origin, b.Checkpoint.Size, len(b.Checkpoint.Witness))
}

// list prints the zoo entries pack accepts.
func list() {
	for _, e := range zoo.Entries() {
		fmt.Printf("%-16s %s\n", e.Name, e.About)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedliot-pack:", err)
	os.Exit(1)
}
