// Command vedliot-pack packages, inspects and verifies .vedz
// deployment artifacts — the toolchain's "optimize once, deploy
// everywhere" unit (internal/artifact).
//
// Usage:
//
//	vedliot-pack pack -model mirror-face -o mirror-face.vedz
//	vedliot-pack pack -model motor -int8 -quantize -o motor.vedz
//	vedliot-pack inspect mirror-face.vedz
//	vedliot-pack verify mirror-face.vedz
//	vedliot-pack list
//
// pack builds a zoo model, optionally runs the optimization pipeline
// (INT8 weight quantization, activation calibration, pruning) and
// writes the artifact; inspect prints the section table, content
// digest, provenance and quantization-schema summary; verify re-checks
// every integrity property (CRCs, canonical byte form, graph validity,
// schema coverage) and exits non-zero on any failure — the command CI
// runs over the committed golden artifact.
package main

import (
	"flag"
	"fmt"
	"os"

	"vedliot/internal/artifact"
	"vedliot/internal/kenning"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/zoo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "pack":
		pack(os.Args[2:])
	case "inspect":
		inspect(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "list":
		list()
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vedliot-pack <pack|inspect|verify|list> [args]
  pack    -model <zoo entry> -o <file.vedz> [-quantize] [-prune 0.x] [-int8] [-calib n]
  inspect <file.vedz>
  verify  <file.vedz>
  list    (print zoo entries)`)
	os.Exit(2)
}

// pack builds the model, runs the selected optimization steps and
// writes the artifact, printing its digest and section sizes.
func pack(args []string) {
	fs := flag.NewFlagSet("pack", flag.ExitOnError)
	model := fs.String("model", "", "zoo entry to package (see `vedliot-pack list`)")
	out := fs.String("o", "", "output .vedz path (default <model>.vedz)")
	quantize := fs.Bool("quantize", false, "post-training INT8 weight quantization (per-channel)")
	prune := fs.Float64("prune", 0, "magnitude-pruning sparsity (0..1)")
	int8Schema := fs.Bool("int8", false, "calibrate activations and embed the INT8 schema (native quantized serving)")
	calib := fs.Int("calib", 4, "calibration batches for -int8")
	fs.Parse(args)
	if *model == "" {
		fatal(fmt.Errorf("pack: -model is required"))
	}
	entry, err := zoo.Find(*model)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *model + ".vedz"
	}

	g := entry.Build()
	cfg := kenning.PipelineConfig{Prune: *prune}
	if *quantize {
		cfg.Quantize = true
		cfg.Granularity = optimize.PerChannel
	}
	if *int8Schema {
		samples, err := nn.SyntheticCalibration(g, *calib)
		if err != nil {
			fatal(err)
		}
		cfg.CalibrationSamples = samples
	}
	rep, err := kenning.RunPipeline(g, cfg)
	if err != nil {
		fatal(err)
	}
	prov := artifact.Provenance{
		Tool:           "vedliot-pack",
		Passes:         rep.AppliedPasses,
		PrunedSparsity: *prune,
	}
	if rep.QuantReport != nil {
		prov.Quantized = rep.QuantReport.Granularity.String()
	}
	m := &artifact.Model{Graph: g, Schema: rep.Schema, Prov: prov}
	if err := artifact.Save(path, m); err != nil {
		fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	info, err := artifact.Inspect(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("packed %s -> %s (%d bytes)\n", g.Name, path, len(data))
	fmt.Print(info)
}

// inspect prints the artifact summary.
func inspect(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	info, err := artifact.Inspect(data)
	if err != nil {
		fatal(err)
	}
	fmt.Print(info)
}

// verify re-checks every integrity property and exits non-zero on any
// failure.
func verify(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	m, err := artifact.Verify(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("OK %s: %s (%d bytes, model %s, %d nodes)\n",
		args[0], m.Digest, len(data), m.Graph.Name, len(m.Graph.Nodes))
}

// list prints the zoo entries pack accepts.
func list() {
	for _, e := range zoo.Entries() {
		fmt.Printf("%-16s %s\n", e.Name, e.About)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedliot-pack:", err)
	os.Exit(1)
}
