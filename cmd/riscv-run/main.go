// Command riscv-run executes a flat RV32IM binary (little-endian words)
// on the simulated SoC, with optional vector-MAC CFU — the Renode-style
// "run the real firmware on the simulated machine" workflow of §II-B.
//
// Usage:
//
//	riscv-run -bin firmware.bin            # run a binary at 0x80000000
//	riscv-run -demo                        # run the built-in UART demo
//	riscv-run -demo -cfu                   # demo with the CFU attached
package main

import (
	"flag"
	"fmt"
	"os"

	"vedliot/internal/cfu"
	"vedliot/internal/riscv"
	"vedliot/internal/soc"
)

func main() {
	binPath := flag.String("bin", "", "flat binary to load at the reset vector")
	demo := flag.Bool("demo", false, "run the built-in demo firmware")
	withCFU := flag.Bool("cfu", false, "attach the vector-MAC CFU")
	maxInstr := flag.Uint64("max", 1_000_000, "instruction budget")
	flag.Parse()

	cfg := soc.Config{Name: "riscv-run"}
	if *withCFU {
		cfg.CFU = &cfu.VectorMAC{}
	}
	m, err := soc.NewMachine(cfg)
	if err != nil {
		fatal(err)
	}

	switch {
	case *binPath != "":
		data, err := os.ReadFile(*binPath)
		if err != nil {
			fatal(err)
		}
		words := make([]uint32, 0, (len(data)+3)/4)
		for i := 0; i < len(data); i += 4 {
			var w uint32
			for b := 0; b < 4 && i+b < len(data); b++ {
				w |= uint32(data[i+b]) << (8 * b)
			}
			words = append(words, w)
		}
		if err := m.LoadFirmware(words); err != nil {
			fatal(err)
		}
	case *demo:
		if err := m.LoadFirmware(demoFirmware(*withCFU)); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	retired, err := m.Run(*maxInstr)
	if err != nil {
		fatal(err)
	}
	if out := m.UART.Output(); out != "" {
		fmt.Printf("uart: %q\n", out)
	}
	fmt.Printf("retired %d instructions, %d cycles, halted=%v\n", retired, m.Core.Cycles, m.Core.Halted)
	if m.Finisher.Done {
		fmt.Printf("finisher: pass=%v (code %#x)\n", m.Finisher.Pass, m.Finisher.Code)
	}
}

// demoFirmware prints "VEDLIoT\n" over the UART; with the CFU it also
// computes a 4-lane INT8 dot product and prints the result digit.
func demoFirmware(withCFU bool) []uint32 {
	p := &soc.Program{}
	for _, ch := range []byte("VEDLIoT\n") {
		p.EmitPutc(ch)
	}
	if withCFU {
		// dot([1,2,3,4],[1,1,1,1]) = 10 -> print "10".
		p.EmitLI(riscv.A0, 0x04030201)
		p.EmitLI(riscv.A1, 0x01010101)
		p.Emit(
			riscv.CUSTOM0(0, 0, 0, cfu.OpMacClear, 0),
			riscv.CUSTOM0(riscv.A2, riscv.A0, riscv.A1, cfu.OpMacStep, 0),
		)
		p.EmitPutc('1')
		p.EmitPutc('0')
		p.EmitPutc('\n')
	}
	p.EmitFinish(true)
	p.Emit(riscv.WFI())
	return p.Words()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "riscv-run:", err)
	os.Exit(1)
}
