// Command kenning is the model-toolchain CLI: it builds a zoo model,
// runs the optimization pipeline, reports statistics, round-trips the
// model through the VNNX interchange format, and evaluates it on a
// simulated accelerator — the §III deployment flow end to end.
//
// Usage:
//
//	kenning -model lenet -quantize -prune 0.8 -target "Xavier NX"
//	kenning -model yolov4 -stats
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"vedliot/internal/accel"
	"vedliot/internal/artifact"
	"vedliot/internal/inference"
	"vedliot/internal/inference/ir"
	"vedliot/internal/kenning"
	"vedliot/internal/nn"
	"vedliot/internal/onnx"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
)

func main() {
	model := flag.String("model", "lenet", "model: lenet, mlp, motornet, arcnet, mobilenetedge, mobilenetv3, resnet50, yolov4, yolov4tiny")
	quantize := flag.Bool("quantize", false, "post-training INT8 quantization")
	int8Runtime := flag.Bool("int8-runtime", false, "calibrate activations and compare the native INT8 engine against the FP32 engine (implies -quantize)")
	calib := flag.Int("calib", 4, "calibration batches for -int8-runtime")
	prune := flag.Float64("prune", 0, "magnitude-pruning sparsity (0..1)")
	target := flag.String("target", "", "accelerator to evaluate on (see internal/accel)")
	stats := flag.Bool("stats", false, "print the per-layer statistics table")
	dumpIR := flag.Bool("dump-ir", false, "print the deterministic pass-by-pass lowering IR (INT8 pipeline with -int8-runtime)")
	export := flag.String("export", "", "write the optimized model to a .vedz deployment artifact at this path")
	flag.Parse()

	g, weights, err := buildModel(*model)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("model %s: %d nodes\n", g.Name, len(g.Nodes))

	// Toolchain pipeline.
	cfg := kenning.PipelineConfig{Prune: *prune}
	if *quantize || *int8Runtime {
		if !weights {
			fatal(fmt.Errorf("-quantize needs a weighted model (lenet, mlp, motornet, arcnet, mobilenetedge)"))
		}
		cfg.Quantize = true
		cfg.Granularity = optimize.PerChannel
	}
	if *int8Runtime {
		cfg.CalibrationSamples = calibrationSamples(g, *calib)
	}
	if *prune > 0 && !weights {
		fatal(fmt.Errorf("-prune needs a weighted model"))
	}
	rep, err := kenning.RunPipeline(g, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("passes applied: %v\n", rep.AppliedPasses)
	if rep.PruneReport != nil {
		fmt.Printf("pruned to %.1f%% sparsity (theoretical speed-up %.2fx)\n",
			rep.PruneReport.Sparsity()*100, rep.PruneReport.TheoreticalSpeedup())
	}
	if rep.QuantReport != nil {
		fmt.Printf("quantized (%s): weights %d -> %d bytes\n",
			rep.QuantReport.Granularity, rep.QuantReport.BytesBefore, rep.QuantReport.BytesAfter)
	}
	if *int8Runtime {
		if rep.Schema == nil {
			fatal(fmt.Errorf("calibration produced no schema"))
		}
		if err := compareRuntimes(g, rep.Schema); err != nil {
			fatal(err)
		}
	}
	if *dumpIR {
		if err := dumpLowering(g, rep.Schema); err != nil {
			fatal(err)
		}
	}
	if *export != "" {
		if !weights {
			fatal(fmt.Errorf("-export needs a weighted model"))
		}
		if err := exportArtifact(g, rep, *export, *prune); err != nil {
			fatal(err)
		}
	}

	if err := g.InferShapes(1); err != nil {
		fatal(err)
	}
	gs, err := g.Stats()
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Print(gs.Summary(40))
	} else {
		fmt.Printf("%.3f GMACs, %.2fM params, %.2f MiB weights\n",
			gs.GMACs(), float64(gs.Params)/1e6, float64(g.WeightBytes())/(1<<20))
	}

	// Interchange round trip (the ONNX role).
	if weights {
		var buf bytes.Buffer
		if err := onnx.Encode(&buf, g); err != nil {
			fatal(err)
		}
		if _, err := onnx.Decode(bytes.NewReader(buf.Bytes())); err != nil {
			fatal(err)
		}
		fmt.Printf("vnnx round trip: %d bytes ok\n", buf.Len())
	}

	// Accelerator evaluation.
	if *target != "" {
		dev, err := accel.FindDevice(*target)
		if err != nil {
			fatal(err)
		}
		prec := dev.BestPrecision()
		w, err := accel.WorkloadFromGraph(g, prec)
		if err != nil {
			fatal(err)
		}
		for _, batch := range []int{1, 8} {
			m, err := dev.Evaluate(w, prec, batch)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s %s B%d: %.1f ms, %.0f GOPS, %.1f W (%s-bound), %.2f mJ/inference\n",
				dev.Name, prec, batch, m.LatencyMS, m.GOPS, m.PowerW, m.Bound, m.EnergyPerInferenceMJ())
		}
	}
}

// dumpLowering prints the shared compilation pipeline's deterministic
// pass-by-pass textual IR — the same trace the golden tests pin. With a
// calibration schema the INT8 pipeline (precision assignment, islands)
// is shown; without one, the FP32 pipeline.
func dumpLowering(g *nn.Graph, schema *nn.QuantSchema) error {
	_, records, err := inference.Lower(g, schema, true)
	if err != nil {
		return err
	}
	fmt.Print(ir.FormatRecords(records, true))
	return nil
}

// exportArtifact packages the optimized model (with its calibration
// schema, when one was derived) as a .vedz deployment artifact — the
// pipeline's "deploy" output a fleet loads via the cluster registry.
func exportArtifact(g *nn.Graph, rep kenning.PipelineReport, path string, prune float64) error {
	prov := artifact.Provenance{Tool: "kenning", Passes: rep.AppliedPasses, PrunedSparsity: prune}
	if rep.QuantReport != nil {
		prov.Quantized = rep.QuantReport.Granularity.String()
	}
	m := &artifact.Model{Graph: g, Schema: rep.Schema, Prov: prov}
	if err := artifact.Save(path, m); err != nil {
		return err
	}
	fmt.Printf("exported %s (%d weight bytes, schema values %d)\n  %s\n",
		path, g.WeightBytes(), schemaValues(rep.Schema), m.Digest)
	return nil
}

func schemaValues(s *nn.QuantSchema) int {
	if s == nil {
		return 0
	}
	return len(s.Activations)
}

// calibrationSamples builds deterministic pseudo-random batches shaped
// like the model input.
func calibrationSamples(g *nn.Graph, n int) []map[string]*tensor.Tensor {
	samples, err := nn.SyntheticCalibration(g, n)
	if err != nil {
		fatal(err)
	}
	return samples
}

// compareRuntimes deploys the calibrated model on both host engines and
// prints the single-core latency comparison — the CLI view of the
// `quantized` bench experiment.
func compareRuntimes(g *nn.Graph, schema *nn.QuantSchema) error {
	fp, err := inference.Compile(g, inference.WithWorkers(1))
	if err != nil {
		return err
	}
	q, err := inference.CompileQuantized(g, schema, inference.WithWorkers(1))
	if err != nil {
		return err
	}
	in, err := nn.SyntheticInput(g, 2, 1)
	if err != nil {
		return err
	}
	// Warm, then best-of-3 interleaved.
	if _, err := fp.Run(in); err != nil {
		return err
	}
	if _, err := q.Run(in); err != nil {
		return err
	}
	var bestF, bestQ time.Duration
	for i := 0; i < 3; i++ {
		start := time.Now()
		if _, err := fp.Run(in); err != nil {
			return err
		}
		if d := time.Since(start); bestF == 0 || d < bestF {
			bestF = d
		}
		start = time.Now()
		if _, err := q.Run(in); err != nil {
			return err
		}
		if d := time.Since(start); bestQ == 0 || d < bestQ {
			bestQ = d
		}
	}
	fmt.Printf("int8 runtime: %d calibrated values, fp32 %v -> int8 %v (%.2fx), arena %d B -> %d B/sample\n",
		len(schema.Activations), bestF, bestQ, float64(bestF)/float64(bestQ),
		fp.ArenaFloatsPerSample()*4, q.ArenaBytesPerSample())
	return nil
}

func buildModel(name string) (*nn.Graph, bool, error) {
	switch name {
	case "mobilenetedge":
		return nn.MobileNetEdge(64, 10, nn.BuildOptions{Weights: true, Seed: 3}), true, nil
	case "lenet":
		return nn.LeNet(28, 10, nn.BuildOptions{Weights: true, Seed: 1}), true, nil
	case "mlp":
		return nn.MLP("lenet-300-100", []int{784, 300, 100, 10}, nn.BuildOptions{Weights: true, Seed: 1}), true, nil
	case "motornet":
		return nn.MotorNet(256, 5, nn.BuildOptions{Weights: true, Seed: 1}), true, nil
	case "arcnet":
		return nn.ArcNet(512, nn.BuildOptions{Weights: true, Seed: 1}), true, nil
	case "mobilenetv3":
		return nn.MobileNetV3(224, nn.BuildOptions{}), false, nil
	case "resnet50":
		return nn.ResNet50(224, nn.BuildOptions{}), false, nil
	case "yolov4":
		return nn.YoloV4(608, 80, nn.BuildOptions{}), false, nil
	case "yolov4tiny":
		return nn.YoloV4Tiny(416, 80, nn.BuildOptions{}), false, nil
	}
	return nil, false, fmt.Errorf("unknown model %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kenning:", err)
	os.Exit(1)
}
