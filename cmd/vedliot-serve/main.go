// Command vedliot-serve drives the fleet-serving layer end to end: it
// assembles a RECS chassis, deploys a model onto every mounted compute
// module through the cluster scheduler, replays a synthetic open-loop
// request trace against the fleet in real time and reports latency,
// throughput, cost-aware routing and the chassis power view. The same
// trace is also replayed through the analytic fleet simulation for a
// modeled-vs-measured comparison.
//
// The model is either a zoo entry built in process, or — the
// production-shaped path — a .vedz deployment artifact packed by
// vedliot-pack/kenning: the file is loaded into the cluster model
// registry and replicas deploy through the fleet-wide compiled-plan
// cache (replica cold-start is load + bind, not calibrate + lower),
// with the artifact's embedded calibration schema driving INT8-capable
// modules.
//
// Usage:
//
//	vedliot-serve -chassis urecs -modules "SMARC ARM,Jetson Xavier NX" \
//	    -model mirror-face -requests 120 -rate 400
//	vedliot-serve -model mirror-face.vedz -requests 120
//	vedliot-serve -list-models
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vedliot/internal/artifact"
	"vedliot/internal/cluster"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/tensor"
	"vedliot/internal/zoo"
)

func main() {
	chassisName := flag.String("chassis", "urecs", "chassis: urecs, trecs, recsbox")
	modules := flag.String("modules", "SMARC ARM,Jetson Xavier NX", "comma-separated module names (slot order)")
	model := flag.String("model", "mirror-face", "model-zoo entry or .vedz artifact file to deploy")
	listModels := flag.Bool("list-models", false, "list servable model-zoo entries")
	requests := flag.Int("requests", 120, "trace length")
	rate := flag.Float64("rate", 400, "open-loop arrival rate (req/s)")
	seed := flag.Int64("seed", 42, "trace seed")
	queue := flag.Int("queue", 256, "admission queue depth")
	emulate := flag.Bool("emulate", true, "stretch accelerator requests to modeled latency")
	int8Serve := flag.Bool("int8", false, "calibrate the model and serve INT8-capable accelerator replicas on the native quantized engine")
	flag.Parse()

	if *listModels {
		for _, e := range zoo.Entries() {
			fmt.Printf("%-16s %s\n", e.Name, e.About)
		}
		return
	}

	// Resolve the model: a .vedz deployment artifact, or a zoo entry
	// built in process.
	var art *artifact.Model
	var build func() *nn.Graph
	about := ""
	if strings.HasSuffix(*model, ".vedz") {
		m, err := artifact.Load(*model)
		if err != nil {
			fatal(err)
		}
		art = m
		about = fmt.Sprintf("artifact %s, %s", *model, m.Digest)
	} else {
		entry, err := zoo.Find(*model)
		if err != nil {
			fatal(err)
		}
		build = entry.Build
		about = entry.About
	}

	// Assemble the platform.
	var chassis *microserver.Chassis
	switch *chassisName {
	case "urecs":
		chassis = microserver.NewURECS()
	case "trecs":
		chassis = microserver.NewTRECS(3)
	case "recsbox":
		chassis = microserver.NewRECSBox(4)
	default:
		fatal(fmt.Errorf("unknown chassis %q", *chassisName))
	}
	fmt.Printf("%s (%s tier), %d slots, baseboard %.1f W\n",
		chassis.Name, chassis.Tier, len(chassis.Slots), chassis.BaseboardW)

	// Resolve the model graph and calibration schema first: INT8
	// serving calibrates (or reuses the artifact's embedded schema)
	// before the fleet compiles per-module executables.
	var g *nn.Graph
	var schema *nn.QuantSchema
	if art != nil {
		g, schema = art.Graph, art.Schema
		if schema != nil {
			fmt.Printf("artifact embeds %d calibrated activation ranges\n", len(schema.Activations))
		}
	} else {
		g = build()
	}
	if *int8Serve && schema == nil {
		var err error
		if schema, err = calibrate(g); err != nil {
			fatal(err)
		}
		fmt.Printf("calibrated %d activation ranges: INT8 accelerator replicas use the native quantized engine\n",
			len(schema.Activations))
	}

	slot := 0
	for _, name := range strings.Split(*modules, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := microserver.FindModule(name)
		if err != nil {
			fatal(err)
		}
		if err := chassis.Insert(slot, m); err != nil {
			fatal(err)
		}
		backend, err := cluster.BackendForModule(m, schema)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("slot %d <- %-18s (%s, %.1f-%.1f W) backend %s\n",
			slot, m.Name, m.Arch, m.IdleW, m.MaxW, backend.Name())
		slot++
	}

	// Deploy the fleet: artifacts go through the model registry and
	// the fleet-wide compiled-plan cache, zoo builds compile per slot.
	ccfg := cluster.Config{QueueDepth: *queue, EmulateLatency: *emulate, Schema: schema}
	if art != nil {
		ccfg.Registry = cluster.NewRegistry()
		if err := ccfg.Registry.Add(art); err != nil {
			fatal(err)
		}
	}
	sched := cluster.NewScheduler(chassis, ccfg)
	defer sched.Close()
	var dep *cluster.Deployment
	var err error
	if art != nil {
		dep, err = sched.DeployArtifact(g.Name)
	} else {
		dep, err = sched.Deploy(g)
	}
	if err != nil {
		fatal(err)
	}
	// Input shape from the input node's declared Attrs.Shape — the
	// artifact graph is registry-shared and read-only, so no
	// InferShapes (which would write OutShape on every node).
	inShape := append(tensor.Shape{1}, g.Node(g.Inputs[0]).Attrs.Shape...)
	fmt.Printf("\ndeployed %s (%s) on %d replicas, input %v\n",
		g.Name, about, len(dep.Replicas()), inShape)
	if art != nil {
		ps := ccfg.Registry.Plans().Stats()
		fmt.Printf("plan cache: %d plan(s) compiled for %d replicas (%d cache hit(s))\n",
			ps.Entries, len(dep.Replicas()), ps.Hits)
	}

	// Replay the open-loop trace in real time.
	trace := cluster.OpenLoopTrace(*requests, *rate, *seed)
	fmt.Printf("replaying %d requests at %.0f req/s (span %v)...\n",
		*requests, *rate, trace.Duration().Round(time.Millisecond))
	input := tensor.New(tensor.FP32, inShape...)
	for i := range input.F32 {
		input.F32[i] = float32(i%13)/13 - 0.5
	}
	ins := map[string]*tensor.Tensor{g.Inputs[0]: input}
	start := time.Now()
	tickets := make([]*cluster.Ticket, 0, *requests)
	shed := 0
	for _, at := range trace.Arrivals {
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		tk, err := sched.Submit(g.Name, ins)
		if err != nil {
			shed++ // open-loop clients don't retry
			continue
		}
		tickets = append(tickets, tk)
	}
	var lats []time.Duration
	failed := 0
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			failed++
			continue
		}
		lats = append(lats, tk.Latency())
	}
	wall := time.Since(start)

	// Report.
	sum := cluster.Summarize(lats)
	fmt.Printf("\ncompleted %d/%d (shed %d, failed %d) in %v -> %.0f req/s\n",
		len(lats), *requests, shed, failed, wall.Round(time.Millisecond),
		float64(len(lats))/wall.Seconds())
	fmt.Printf("latency: mean %v  p50 %v  p95 %v  max %v\n",
		sum.Mean.Round(time.Microsecond), sum.P50.Round(time.Microsecond),
		sum.P95.Round(time.Microsecond), sum.Max.Round(time.Microsecond))

	fmt.Printf("\nrouting (cost = service estimate x queue depth, power tie-break):\n")
	st := dep.Stats()
	for _, line := range st.ReplicaTable() {
		fmt.Println(line)
	}
	util := map[int]float64{}
	for _, rs := range st.Replicas {
		util[rs.Slot] = 1
	}
	fmt.Printf("chassis power: %.1f W idle-fleet, %.1f W all-serving (budget %.0f W)\n",
		chassis.PowerW(nil), chassis.PowerW(util), chassis.BudgetW)

	// Modeled replay of the same trace for comparison.
	sim, err := cluster.SimulateTrace(cluster.SimFleet(dep), trace)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nanalytic replay of the same trace: %.0f req/s, p95 %v, %.1f J\n",
		sim.Throughput, sim.Latency.P95.Round(time.Microsecond), sim.EnergyJ)
}

// calibrate derives the activation schema from deterministic
// pseudo-random batches shaped like the model input.
func calibrate(g *nn.Graph) (*nn.QuantSchema, error) {
	samples, err := nn.SyntheticCalibration(g, 4)
	if err != nil {
		return nil, err
	}
	return optimize.Calibrate(g, samples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedliot-serve:", err)
	os.Exit(1)
}
