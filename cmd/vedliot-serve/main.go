// Command vedliot-serve drives the fleet-serving layer end to end: it
// assembles a RECS chassis, deploys a model onto every mounted compute
// module through the cluster scheduler, replays a synthetic open-loop
// request trace against the fleet in real time and reports latency,
// throughput, cost-aware routing and the chassis power view. The same
// trace is also replayed through the analytic fleet simulation for a
// modeled-vs-measured comparison.
//
// The model is either a zoo entry built in process, or — the
// production-shaped path — a .vedz deployment artifact packed by
// vedliot-pack/kenning: the file is loaded into the cluster model
// registry and replicas deploy through the fleet-wide compiled-plan
// cache (replica cold-start is load + bind, not calibrate + lower),
// with the artifact's embedded calibration schema driving INT8-capable
// modules. With -policy the registry becomes a gated release channel:
// the artifact deploys only with a bundle proving a trusted signature,
// transparency-log inclusion and a witnessed checkpoint, and every
// replica then proves via enclave attestation that it runs exactly the
// authorized digest.
//
// Beyond the trace replay, the command is also the network front door:
// -listen exposes the deployed fleet over the framed-TCP protocol
// (plus an optional -http JSON adapter) with per-tenant API keys and
// socket-boundary adaptive batching, -load turns the binary into a
// closed-loop load generator driving a remote front door, and
// -load-smoke runs both ends in one process over a real localhost
// socket and fails unless the run is clean and requests coalesced.
//
// Usage:
//
//	vedliot-serve -chassis urecs -modules "SMARC ARM,Jetson Xavier NX" \
//	    -model mirror-face -requests 120 -rate 400
//	vedliot-serve -model mirror-face.vedz -requests 120
//	vedliot-serve -model mirror-gesture -int8 -soc-tier -requests 60 -rate 50
//	vedliot-serve -model mirror-face.vedz -policy keys/ -bundle mirror-face.vedz.bundle.json
//	vedliot-serve -model tiny -listen :9090 -http :9091 -keys edge=tenant-a
//	vedliot-serve -load 127.0.0.1:9090 -model tiny -clients 2000 -key edge
//	vedliot-serve -load-smoke -model tiny
//	vedliot-serve -list-models
package main

import (
	"crypto/ed25519"
	"crypto/rand"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"vedliot/internal/artifact"
	"vedliot/internal/cluster"
	"vedliot/internal/microserver"
	"vedliot/internal/nn"
	"vedliot/internal/optimize"
	"vedliot/internal/release"
	"vedliot/internal/serve"
	"vedliot/internal/tensor"
	"vedliot/internal/zoo"
)

func main() {
	chassisName := flag.String("chassis", "urecs", "chassis: urecs, trecs, recsbox")
	modules := flag.String("modules", "SMARC ARM,Jetson Xavier NX", "comma-separated module names (slot order)")
	model := flag.String("model", "mirror-face", "model-zoo entry or .vedz artifact file to deploy")
	listModels := flag.Bool("list-models", false, "list servable model-zoo entries")
	requests := flag.Int("requests", 120, "trace length")
	rate := flag.Float64("rate", 400, "open-loop arrival rate (req/s)")
	seed := flag.Int64("seed", 42, "trace seed")
	queue := flag.Int("queue", 256, "admission queue depth")
	emulate := flag.Bool("emulate", true, "stretch accelerator requests to modeled latency")
	int8Serve := flag.Bool("int8", false, "calibrate the model and serve INT8-capable accelerator replicas on the native quantized engine")
	socTier := flag.Bool("soc-tier", false, "also mount the RISC-V CFU SoM: a replica serving INT8 firmware on the emulated SoC (requires -int8 or an artifact with an embedded schema)")
	listen := flag.String("listen", "", "serve the fleet over framed TCP on this address instead of replaying a trace")
	httpAddr := flag.String("http", "", "with -listen: also serve the HTTP/JSON adapter on this address")
	keys := flag.String("keys", "", "comma-separated key=tenant API keys for -listen (empty = open mode)")
	maxBatch := flag.Int("max-batch", 32, "front-door coalescing cap in rows (1 = passthrough)")
	maxDelay := flag.Duration("max-delay", time.Millisecond, "front-door max coalescing delay")
	loadAddr := flag.String("load", "", "run as a closed-loop load generator against this front-door address")
	clients := flag.Int("clients", 1000, "load generator: concurrent closed-loop clients")
	perClient := flag.Int("requests-per-client", 4, "load generator: requests per client")
	think := flag.Duration("think", 10*time.Millisecond, "load generator: mean think time between requests")
	slo := flag.Duration("slo", 100*time.Millisecond, "load generator: per-request latency objective")
	conns := flag.Int("conns", 8, "load generator: pooled connections")
	key := flag.String("key", "", "load generator: API key")
	loadSmoke := flag.Bool("load-smoke", false, "serve and load the fleet in-process over a localhost socket; exit non-zero unless the run is clean and requests coalesced")
	policyDir := flag.String("policy", "", "release key directory (vedliot-pack keygen): gate artifact deployment on the signed, witnessed release bundle")
	bundlePath := flag.String("bundle", "", "release bundle for the .vedz artifact (required with -policy)")
	minWitnesses := flag.Int("min-witnesses", 1, "witness countersignatures -policy requires")
	flag.Parse()

	if *listModels {
		for _, e := range zoo.Entries() {
			fmt.Printf("%-16s %s\n", e.Name, e.About)
		}
		return
	}

	if *loadAddr != "" {
		if err := runLoad(*loadAddr, *model, *key, *conns, serve.LoadConfig{
			Clients:           *clients,
			RequestsPerClient: *perClient,
			Think:             *think,
			SLO:               *slo,
			Retry:             true,
			Seed:              *seed,
		}); err != nil {
			fatal(err)
		}
		return
	}

	// Resolve the model: a .vedz deployment artifact, or a zoo entry
	// built in process.
	var art *artifact.Model
	var build func() *nn.Graph
	about := ""
	if strings.HasSuffix(*model, ".vedz") {
		m, err := artifact.Load(*model)
		if err != nil {
			fatal(err)
		}
		art = m
		about = fmt.Sprintf("artifact %s, %s", *model, m.Digest)
	} else {
		entry, err := zoo.Find(*model)
		if err != nil {
			fatal(err)
		}
		build = entry.Build
		about = entry.About
	}

	// Assemble the platform.
	var chassis *microserver.Chassis
	switch *chassisName {
	case "urecs":
		chassis = microserver.NewURECS()
	case "trecs":
		chassis = microserver.NewTRECS(3)
	case "recsbox":
		chassis = microserver.NewRECSBox(4)
	default:
		fatal(fmt.Errorf("unknown chassis %q", *chassisName))
	}
	fmt.Printf("%s (%s tier), %d slots, baseboard %.1f W\n",
		chassis.Name, chassis.Tier, len(chassis.Slots), chassis.BaseboardW)

	// Resolve the model graph and calibration schema first: INT8
	// serving calibrates (or reuses the artifact's embedded schema)
	// before the fleet compiles per-module executables.
	var g *nn.Graph
	var schema *nn.QuantSchema
	if art != nil {
		g, schema = art.Graph, art.Schema
		if schema != nil {
			fmt.Printf("artifact embeds %d calibrated activation ranges\n", len(schema.Activations))
		}
	} else {
		g = build()
	}
	if *int8Serve && schema == nil {
		var err error
		if schema, err = calibrate(g); err != nil {
			fatal(err)
		}
		fmt.Printf("calibrated %d activation ranges: INT8 accelerator replicas use the native quantized engine\n",
			len(schema.Activations))
	}

	names := strings.Split(*modules, ",")
	if *socTier {
		if schema == nil {
			fatal(fmt.Errorf("-soc-tier serves INT8 firmware only: pass -int8 or deploy an artifact with an embedded schema"))
		}
		names = append(names, "RISC-V CFU SoM")
	}
	slot := 0
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		m, err := microserver.FindModule(name)
		if err != nil {
			fatal(err)
		}
		if err := chassis.Insert(slot, m); err != nil {
			fatal(err)
		}
		backend, err := cluster.BackendForModule(m, schema)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("slot %d <- %-18s (%s, %.1f-%.1f W) backend %s\n",
			slot, m.Name, m.Arch, m.IdleW, m.MaxW, backend.Name())
		slot++
	}

	// Deploy the fleet: artifacts go through the model registry and
	// the fleet-wide compiled-plan cache, zoo builds compile per slot.
	ccfg := cluster.Config{QueueDepth: *queue, EmulateLatency: *emulate, Schema: schema}
	if art != nil {
		ccfg.Registry = cluster.NewRegistry()
		if *policyDir != "" {
			// Policy-gated release channel: the registry refuses the
			// artifact unless the bundle proves signature, transparency-log
			// inclusion and the witness quorum; DeployArtifact re-verifies.
			if *bundlePath == "" {
				fatal(fmt.Errorf("-policy requires -bundle"))
			}
			pol, err := release.LoadPolicyDir(*policyDir, *minWitnesses)
			if err != nil {
				fatal(err)
			}
			ccfg.Registry.SetPolicy(pol)
			b, err := release.LoadBundle(*bundlePath)
			if err != nil {
				fatal(err)
			}
			if err := ccfg.Registry.AddRelease(art, b); err != nil {
				fatal(err)
			}
			fmt.Printf("release gate: signer %s, log %s leaf %d of %d, %d witness countersignature(s) (quorum %d)\n",
				b.Envelope.SignerID, b.Checkpoint.Origin, b.LeafIndex, b.Checkpoint.Size,
				len(b.Checkpoint.Witness), *minWitnesses)
		} else if err := ccfg.Registry.Add(art); err != nil {
			fatal(err)
		}
	} else if *policyDir != "" {
		fatal(fmt.Errorf("-policy applies to .vedz artifact deployments only"))
	}
	sched := cluster.NewScheduler(chassis, ccfg)
	defer sched.Close()
	var dep *cluster.Deployment
	var err error
	if art != nil {
		dep, err = sched.DeployArtifact(g.Name)
	} else {
		dep, err = sched.Deploy(g)
	}
	if err != nil {
		fatal(err)
	}
	// Input shape from the input node's declared Attrs.Shape — the
	// artifact graph is registry-shared and read-only, so no
	// InferShapes (which would write OutShape on every node).
	inShape := append(tensor.Shape{1}, g.Node(g.Inputs[0]).Attrs.Shape...)
	fmt.Printf("\ndeployed %s (%s) on %d replicas, input %v\n",
		g.Name, about, len(dep.Replicas()), inShape)
	if art != nil {
		ps := ccfg.Registry.Plans().Stats()
		fmt.Printf("plan cache: %d plan(s) compiled for %d replicas (%d cache hit(s))\n",
			ps.Entries, len(dep.Replicas()), ps.Hits)
		if err := printAttestation(dep); err != nil {
			fatal(err)
		}
	}

	policy := serve.BatchPolicy{MaxBatch: *maxBatch, MaxDelay: *maxDelay}
	if *loadSmoke {
		if err := runSmoke(sched, g, inShape, policy, *clients, *perClient, *think, *slo, *seed); err != nil {
			fatal(err)
		}
		return
	}
	if *listen != "" {
		if err := runListen(sched, *listen, *httpAddr, parseKeys(*keys), policy); err != nil {
			fatal(err)
		}
		return
	}

	// Replay the open-loop trace in real time.
	trace := cluster.OpenLoopTrace(*requests, *rate, *seed)
	fmt.Printf("replaying %d requests at %.0f req/s (span %v)...\n",
		*requests, *rate, trace.Duration().Round(time.Millisecond))
	input := tensor.New(tensor.FP32, inShape...)
	for i := range input.F32 {
		input.F32[i] = float32(i%13)/13 - 0.5
	}
	ins := map[string]*tensor.Tensor{g.Inputs[0]: input}
	start := time.Now()
	tickets := make([]*cluster.Ticket, 0, *requests)
	shed := 0
	for _, at := range trace.Arrivals {
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		tk, err := sched.Submit(g.Name, ins)
		if err != nil {
			shed++ // open-loop clients don't retry
			continue
		}
		tickets = append(tickets, tk)
	}
	var lats []time.Duration
	failed := 0
	for _, tk := range tickets {
		if _, err := tk.Wait(); err != nil {
			failed++
			continue
		}
		lats = append(lats, tk.Latency())
	}
	wall := time.Since(start)

	// Report.
	sum := cluster.Summarize(lats)
	fmt.Printf("\ncompleted %d/%d (shed %d, failed %d) in %v -> %.0f req/s\n",
		len(lats), *requests, shed, failed, wall.Round(time.Millisecond),
		float64(len(lats))/wall.Seconds())
	fmt.Printf("latency: mean %v  p50 %v  p95 %v  max %v\n",
		sum.Mean.Round(time.Microsecond), sum.P50.Round(time.Microsecond),
		sum.P95.Round(time.Microsecond), sum.Max.Round(time.Microsecond))

	fmt.Printf("\nrouting (cost = service estimate x queue depth, power tie-break):\n")
	st := dep.Stats()
	for _, line := range st.ReplicaTable() {
		fmt.Println(line)
	}
	util := map[int]float64{}
	for _, rs := range st.Replicas {
		util[rs.Slot] = 1
	}
	fmt.Printf("chassis power: %.1f W idle-fleet, %.1f W all-serving (budget %.0f W)\n",
		chassis.PowerW(nil), chassis.PowerW(util), chassis.BudgetW)

	// Modeled replay of the same trace for comparison.
	sim, err := cluster.SimulateTrace(cluster.SimFleet(dep), trace)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nanalytic replay of the same trace: %.0f req/s, p95 %v, %.1f J\n",
		sim.Throughput, sim.Latency.P95.Round(time.Microsecond), sim.EnergyJ)
}

// printAttestation challenges every replica of an artifact deployment
// with a fresh nonce under an ephemeral platform key and prints the
// verified identity table: each replica proves its enclave measurement
// binds the exact artifact digest the release policy authorized to the
// backend and module it runs on.
func printAttestation(dep *cluster.Deployment) error {
	platformPub, platformKey, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return err
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	atts, err := dep.Attest(nonce, platformKey)
	if err != nil {
		return err
	}
	fmt.Printf("replica attestation (digest %s):\n", dep.ArtifactDigest())
	for _, a := range atts {
		status := "VERIFIED"
		if err := cluster.VerifyReplicaAttestation(a, platformPub, dep.ArtifactDigest(), nonce); err != nil {
			status = "FAILED: " + err.Error()
		}
		fmt.Printf("  replica %d slot %d %-18s %-20s measurement %x... ecall overhead %v  %s\n",
			a.Replica, a.Slot, a.Module, a.Backend, a.Quote.Measurement[:6],
			time.Duration(a.EcallOverheadNS), status)
	}
	return nil
}

// parseKeys turns "key=tenant,key2=tenant2" into the server key map
// (nil for an empty spec: open mode).
func parseKeys(spec string) map[string]string {
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	m := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		k, tenant, ok := strings.Cut(pair, "=")
		if !ok {
			tenant = k
		}
		m[k] = tenant
	}
	return m
}

// fleetInput builds a deterministic single-sample request for the
// model's declared input shape.
func fleetInput(g *nn.Graph, inShape tensor.Shape) map[string]*tensor.Tensor {
	input := tensor.New(tensor.FP32, inShape...)
	for i := range input.F32 {
		input.F32[i] = float32(i%13)/13 - 0.5
	}
	return map[string]*tensor.Tensor{g.Inputs[0]: input}
}

// runListen exposes the deployed fleet over the framed protocol (and
// optionally HTTP) until interrupted, then prints ingestion telemetry.
func runListen(sched *cluster.Scheduler, addr, httpAddr string, keys map[string]string, policy serve.BatchPolicy) error {
	srv, err := serve.Listen(addr, sched, serve.Config{Keys: keys, Batch: policy})
	if err != nil {
		return err
	}
	defer srv.Close()
	mode := "open mode"
	if keys != nil {
		mode = fmt.Sprintf("%d API key(s)", len(keys))
	}
	fmt.Printf("\nframed TCP front door on %s (%s, max batch %d, max delay %v)\n",
		srv.Addr(), mode, policy.MaxBatch, policy.MaxDelay)
	var hsrv *http.Server
	if httpAddr != "" {
		hsrv = &http.Server{Addr: httpAddr, Handler: srv.Handler()}
		go func() {
			if err := hsrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "vedliot-serve: http:", err)
			}
		}()
		fmt.Printf("HTTP/JSON adapter on %s (POST /v1/infer, GET /v1/models, GET /v1/stats)\n", httpAddr)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	if hsrv != nil {
		hsrv.Close()
	}
	st := srv.Stats()
	fmt.Printf("\n%d conns accepted, %d requests: %d overloaded, %d unauthorized, %d bad, %d errors\n",
		st.Accepted, st.Requests, st.Overloaded, st.Unauthorized, st.BadRequest, st.Errors)
	fmt.Printf("coalescing: %d rows over %d submissions (%.1f rows/batch)\n",
		st.BatchedRows, st.Batches, st.MeanBatch)
	return nil
}

// runLoad drives a closed-loop client population against a remote
// front door. The model must be a zoo entry so the generator can shape
// the request tensors locally.
func runLoad(addr, model, key string, conns int, cfg serve.LoadConfig) error {
	entry, err := zoo.Find(model)
	if err != nil {
		return err
	}
	g := entry.Build()
	if err := g.InferShapes(1); err != nil {
		return err
	}
	ins := fleetInput(g, g.Node(g.Inputs[0]).OutShape)
	cfg.Model = g.Name
	cfg.Inputs = func(int) map[string]*tensor.Tensor { return ins }
	pool, err := serve.DialPool(addr, key, conns)
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Printf("closed loop against %s: %d clients x %d requests of %s over %d conns (think %v, SLO %v)\n",
		addr, cfg.Clients, cfg.RequestsPerClient, g.Name, conns, cfg.Think, cfg.SLO)
	res, err := serve.RunClosedLoop(pool, cfg)
	if err != nil {
		return err
	}
	printLoad(res)
	return nil
}

// runSmoke serves the already-deployed fleet on a localhost socket,
// drives a short closed-loop load through real frames and fails unless
// the run is clean (no hard failures, every request accounted for) and
// the front door actually coalesced.
func runSmoke(sched *cluster.Scheduler, g *nn.Graph, inShape tensor.Shape, policy serve.BatchPolicy,
	clients, perClient int, think, slo time.Duration, seed int64) error {
	srv, err := serve.Listen("127.0.0.1:0", sched, serve.Config{Batch: policy})
	if err != nil {
		return err
	}
	defer srv.Close()
	pool, err := serve.DialPool(srv.Addr(), "", 4)
	if err != nil {
		return err
	}
	defer pool.Close()
	ins := fleetInput(g, inShape)
	fmt.Printf("\nload-smoke on %s: %d clients x %d requests (think %v, max batch %d)\n",
		srv.Addr(), clients, perClient, think, policy.MaxBatch)
	res, err := serve.RunClosedLoop(pool, serve.LoadConfig{
		Model:             g.Name,
		Clients:           clients,
		RequestsPerClient: perClient,
		Think:             think,
		SLO:               slo,
		Retry:             true,
		Inputs:            func(int) map[string]*tensor.Tensor { return ins },
		Seed:              seed,
	})
	if err != nil {
		return err
	}
	printLoad(res)
	st := srv.Stats()
	fmt.Printf("coalescing: %d rows over %d submissions (%.1f rows/batch)\n",
		st.BatchedRows, st.Batches, st.MeanBatch)
	if res.Failed > 0 {
		return fmt.Errorf("load-smoke: %d hard failures", res.Failed)
	}
	if got := res.Completed + res.Shed; got != res.Requests {
		return fmt.Errorf("load-smoke: %d of %d requests unaccounted for", res.Requests-got, res.Requests)
	}
	if st.MeanBatch <= 1 {
		return fmt.Errorf("load-smoke: no coalescing (%.2f rows/batch)", st.MeanBatch)
	}
	fmt.Println("load-smoke ok")
	return nil
}

// printLoad renders one load-run result.
func printLoad(res serve.LoadResult) {
	fmt.Printf("completed %d/%d (shed %d, failed %d, %d retries) in %v -> %.0f req/s\n",
		res.Completed, res.Requests, res.Shed, res.Failed, res.Retries,
		res.Elapsed.Round(time.Millisecond), res.Throughput)
	fmt.Printf("latency: p50 %v  p99 %v  p999 %v  max %v; SLO violations %d (%.2f%%)\n",
		res.Latency.P50.Round(time.Microsecond), res.Latency.P99.Round(time.Microsecond),
		res.Latency.P999.Round(time.Microsecond), res.Latency.Max.Round(time.Microsecond),
		res.SLOViolations, 100*res.SLOViolationRate)
}

// calibrate derives the activation schema from deterministic
// pseudo-random batches shaped like the model input.
func calibrate(g *nn.Graph) (*nn.QuantSchema, error) {
	samples, err := nn.SyntheticCalibration(g, 4)
	if err != nil {
		return nil, err
	}
	return optimize.Calibrate(g, samples)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "vedliot-serve:", err)
	os.Exit(1)
}
